"""One function per table/figure of the paper's evaluation.

Each function returns a ``(headers, rows)`` pair plus derived data so
the benchmark modules can both print the regenerated table and assert
on its shape.  EXPERIMENTS.md records the paper-vs-measured values.

Every function is split into two layers:

* a ``*_cells`` builder that *declares* the experiment's sweep grid as
  :class:`~repro.harness.sweep.SweepCell` objects — the CLI's
  ``repro sweep`` command unions these to run the full evaluation as
  one (optionally parallel, store-backed) batch;
* the table function itself, which first materializes its grid through
  :func:`~repro.harness.sweep.ensure_cells` and then assembles rows
  from the warmed run cache.  Serial and parallel materialization are
  bit-identical, so the rendered tables never depend on ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.differential import VerifySpec
from repro.defenses.registry import defense_names, get_defense
from repro.harness.runner import (
    run_attack,
    run_djpeg,
    run_microbench,
    run_verify,
    run_workload,
)
from repro.harness.sweep import MICRO_ITERS, SweepCell, ensure_cells
from repro.models.priorwork import GhostRiderModel, RaccoonModel
from repro.security.attackers import (
    AttackSpec,
    applicable_attackers,
    expected_verdict,
)
from repro.uarch.config import MachineConfig, fast_functional, haswell_like
from repro.workloads.djpeg import FORMATS, DjpegSpec
from repro.workloads.microbench import WORKLOADS, MicrobenchSpec
from repro.workloads.registry import WorkloadRunSpec, iter_workloads

# Default sweep parameters, sized so the pure-Python timing model
# finishes in benchmark-friendly time (see DESIGN.md substitution 4).
DEFAULT_W_SWEEP = (1, 2, 4, 6, 8, 10)
DEFAULT_DJPEG_SIZES = (512, 1024, 2048, 4096)   # paper: 256k..2048k pixels

# The defense axis the adversarial experiments sweep: the three legacy
# comparison points plus every new mitigation (cte is exercised by the
# overhead experiments; its attack behaviour matches its machine side,
# the plain core).
DEFAULT_ATTACK_DEFENSES = ("plain", "sempe", "fence", "cache-partition",
                           "cache-randomize", "flush-local")

# Backward-compatible alias (the iteration table moved to the sweep
# layer so cell builders and table functions share one source of truth).
_MICRO_ITERS = MICRO_ITERS


def _micro_trio(workload: str, w: int) -> tuple[MicrobenchSpec,
                                                MicrobenchSpec]:
    """The (natural, oblivious) spec pair every microbench point uses."""
    iters = MICRO_ITERS[workload]
    natural = MicrobenchSpec(workload, w=w, iters=iters)
    oblivious = MicrobenchSpec(workload, w=w, iters=iters,
                               variant="oblivious")
    return natural, oblivious


@dataclass
class ExperimentResult:
    """A rendered experiment: table plus raw series for assertions."""

    experiment: str
    headers: list[str]
    rows: list[list[object]]
    series: dict = field(default_factory=dict)


# --------------------------------------------------------------------------
# Table I — approach comparison
# --------------------------------------------------------------------------

def table1_cells(w: int = 10, workloads=WORKLOADS) -> list[SweepCell]:
    """Sweep grid behind :func:`table1_comparison`."""
    cells: list[SweepCell] = []
    for workload in workloads:
        natural, oblivious = _micro_trio(workload, w)
        cells.append(SweepCell("micro", natural, "plain"))
        cells.append(SweepCell("micro", natural, "sempe"))
        cells.append(SweepCell("micro", oblivious, "cte"))
    return cells


def table1_comparison(w: int = 10, workloads=WORKLOADS) -> ExperimentResult:
    """Regenerate Table I.

    Qualitative columns come from each design; the overhead column pairs
    the paper's *reported* numbers with overheads measured (SeMPE, CTE)
    or modelled (Raccoon, GhostRider) on our microbenchmarks at W=*w*.
    """
    ensure_cells("table1", table1_cells(w, workloads))
    raccoon = RaccoonModel()
    ghostrider = GhostRiderModel()
    measured: dict[str, list[float]] = {
        "CTE": [], "SeMPE": [], "Raccoon": [], "GhostRider": []}
    for workload in workloads:
        natural, oblivious = _micro_trio(workload, w)
        base = run_microbench(natural, "plain")
        sempe = run_microbench(natural, "sempe")
        cte = run_microbench(oblivious, "cte")
        measured["SeMPE"].append(sempe.cycles / base.cycles)
        measured["CTE"].append(cte.cycles / base.cycles)
        measured["Raccoon"].append(
            raccoon.estimate(sempe.report, base.cycles).slowdown)
        measured["GhostRider"].append(
            ghostrider.estimate(sempe.report, base.cycles).slowdown)

    def worst(name: str) -> float:
        return max(measured[name])

    headers = ["Aspect", "CTE", "GhostRider", "Raccoon", "SeMPE"]
    rows = [
        ["Approach", "elim. cond. branch", "equalize path",
         "execute both paths", "execute both paths"],
        ["Technique", "SW", "HW/SW", "SW", "HW/SW"],
        ["Programming complexity", "High", "Low", "Low", "Low"],
        ["Reported overheads (paper)", "187.3x", "1987x", "452x", "10.6x"],
        ["Measured/modelled here (worst)",
         f"{worst('CTE'):.1f}x", f"{worst('GhostRider'):.0f}x",
         f"{worst('Raccoon'):.0f}x", f"{worst('SeMPE'):.1f}x"],
        ["Simple architecture", "Yes", "No", "Yes", "Yes"],
        ["Backward compatible", "Yes", "No", "No", "Yes"],
    ]
    return ExperimentResult("Table I", headers, rows, series=measured)


# --------------------------------------------------------------------------
# Table II — configuration echo (sanity: we model the paper's machine)
# --------------------------------------------------------------------------

def table2_cells() -> list[SweepCell]:
    """Table II echoes the config; it simulates nothing."""
    return []


def table2_config(config: MachineConfig | None = None) -> ExperimentResult:
    config = config or haswell_like()
    hierarchy = config.hierarchy
    rows = [
        ["clock frequency", f"{config.clock_ghz:.1f} GHz"],
        ["branch predictor", f"{config.predictor} "
                             f"(~{config.tage_storage_kb}KB) + ITTAGE"],
        ["fetch", f"{config.fetch_width} instructions / cycle"],
        ["decode", f"{config.decode_width} uops / cycle"],
        ["rename", f"{config.rename_width} uops / cycle"],
        ["issue", f"{config.issue_width} uops"],
        ["load issue", f"{config.load_issue_width} loads / cycle"],
        ["retire", f"{config.retire_width} uops / cycle"],
        ["reorder buffer", f"{config.rob_entries} uops"],
        ["physical registers",
         f"{config.int_phys_regs} INT, {config.fp_phys_regs} FP"],
        ["issue buffers",
         f"{config.int_issue_buffer} INT / {config.fp_issue_buffer} FP uops"],
        ["load/store queue",
         f"{config.load_queue}+{config.store_queue} entries"],
        ["DL1 cache", _cache_text(hierarchy.dl1)],
        ["IL1 cache", _cache_text(hierarchy.il1)],
        ["L2 cache", _cache_text(hierarchy.l2)],
        ["prefetcher", "stride (L1), stream (L2)"],
        ["SPM slots", f"{config.spm_slots} snapshots"],
        ["SPM throughput", f"{config.spm_bytes_per_cycle} B/cycle R/W"],
        ["jbTable depth", str(config.jbtable_depth)],
    ]
    return ExperimentResult("Table II", ["parameter", "value"], rows)


def _cache_text(cache_config) -> str:
    return (f"{cache_config.size_bytes // 1024}KB, "
            f"{cache_config.assoc}-way assoc.")


# --------------------------------------------------------------------------
# Fig. 8 — djpeg execution-time overhead
# --------------------------------------------------------------------------

def fig8_cells(sizes=DEFAULT_DJPEG_SIZES,
               formats=FORMATS) -> list[SweepCell]:
    """Sweep grid behind Fig. 8 (and, identically, Fig. 9)."""
    cells: list[SweepCell] = []
    for fmt in formats:
        for size in sizes:
            spec = DjpegSpec(fmt, size)
            cells.append(SweepCell("djpeg", spec, "plain"))
            cells.append(SweepCell("djpeg", spec, "sempe"))
    return cells


def fig8_djpeg_overhead(sizes=DEFAULT_DJPEG_SIZES,
                        formats=FORMATS) -> ExperimentResult:
    ensure_cells("fig8", fig8_cells(sizes, formats))
    headers = ["format"] + [f"{size}px" for size in sizes]
    rows = []
    series: dict[str, list[float]] = {}
    for fmt in formats:
        overheads = []
        for size in sizes:
            spec = DjpegSpec(fmt, size)
            base = run_djpeg(spec, "plain")
            sempe = run_djpeg(spec, "sempe")
            overheads.append(sempe.cycles / base.cycles - 1.0)
        series[fmt] = overheads
        rows.append([fmt.upper()] + [f"{o * 100:.0f}%" for o in overheads])
    return ExperimentResult("Fig. 8", headers, rows, series=series)


# --------------------------------------------------------------------------
# Fig. 9 — cache miss rates (baseline vs SeMPE)
# --------------------------------------------------------------------------

def fig9_cells(sizes=DEFAULT_DJPEG_SIZES,
               formats=FORMATS) -> list[SweepCell]:
    return fig8_cells(sizes, formats)


def fig9_cache_missrates(sizes=DEFAULT_DJPEG_SIZES,
                         formats=FORMATS) -> ExperimentResult:
    ensure_cells("fig9", fig9_cells(sizes, formats))
    headers = ["config", "IL1 base", "IL1 sempe", "DL1 base", "DL1 sempe",
               "L2 base", "L2 sempe"]
    rows = []
    series: dict[str, dict[str, list[float]]] = {
        level: {"base": [], "sempe": []} for level in ("IL1", "DL1", "L2")
    }
    for fmt in formats:
        for size in sizes:
            spec = DjpegSpec(fmt, size)
            base = run_djpeg(spec, "plain")
            sempe = run_djpeg(spec, "sempe")
            row = [f"{fmt}-{size}px"]
            for level in ("IL1", "DL1", "L2"):
                base_rate = base.miss_rates[level]
                sempe_rate = sempe.miss_rates[level]
                series[level]["base"].append(base_rate)
                series[level]["sempe"].append(sempe_rate)
                row.extend([f"{base_rate * 100:.2f}%",
                            f"{sempe_rate * 100:.2f}%"])
            # interleave per-level columns in the right order
            rows.append([row[0], row[1], row[2], row[3], row[4],
                         row[5], row[6]])
    return ExperimentResult("Fig. 9", headers, rows, series=series)


# --------------------------------------------------------------------------
# Fig. 10a — microbenchmark slowdown vs nesting depth, SeMPE vs FaCT
# --------------------------------------------------------------------------

def fig10a_cells(w_sweep=DEFAULT_W_SWEEP,
                 workloads=WORKLOADS) -> list[SweepCell]:
    cells: list[SweepCell] = []
    for workload in workloads:
        for w in w_sweep:
            natural, oblivious = _micro_trio(workload, w)
            cells.append(SweepCell("micro", natural, "plain"))
            cells.append(SweepCell("micro", natural, "sempe"))
            cells.append(SweepCell("micro", oblivious, "cte"))
    return cells


def fig10a_microbench(w_sweep=DEFAULT_W_SWEEP,
                      workloads=WORKLOADS) -> ExperimentResult:
    ensure_cells("fig10a", fig10a_cells(w_sweep, workloads))
    headers = ["workload", "scheme"] + [f"W={w}" for w in w_sweep]
    rows = []
    series: dict[tuple[str, str], list[float]] = {}
    for workload in workloads:
        sempe_row: list[object] = [workload, "SeMPE"]
        cte_row: list[object] = [workload, "FaCT/CTE"]
        sempe_series: list[float] = []
        cte_series: list[float] = []
        for w in w_sweep:
            natural, oblivious = _micro_trio(workload, w)
            base = run_microbench(natural, "plain")
            sempe = run_microbench(natural, "sempe")
            cte = run_microbench(oblivious, "cte")
            sempe_slowdown = sempe.cycles / base.cycles
            cte_slowdown = cte.cycles / base.cycles
            sempe_series.append(sempe_slowdown)
            cte_series.append(cte_slowdown)
            sempe_row.append(f"{sempe_slowdown:.1f}x")
            cte_row.append(f"{cte_slowdown:.1f}x")
        rows.append(sempe_row)
        rows.append(cte_row)
        series[(workload, "sempe")] = sempe_series
        series[(workload, "cte")] = cte_series
    return ExperimentResult("Fig. 10a", headers, rows, series=series)


# --------------------------------------------------------------------------
# Fig. 10b — slowdown normalized to the ideal (sum of all paths)
# --------------------------------------------------------------------------

def fig10b_cells(w_sweep=DEFAULT_W_SWEEP,
                 workloads=WORKLOADS) -> list[SweepCell]:
    cells: list[SweepCell] = []
    for workload in workloads:
        for w in w_sweep:
            natural, oblivious = _micro_trio(workload, w)
            ideal = MicrobenchSpec(workload, w=w,
                                   iters=MICRO_ITERS[workload],
                                   variant="unconditional")
            cells.append(SweepCell("micro", ideal, "plain"))
            cells.append(SweepCell("micro", natural, "sempe"))
            cells.append(SweepCell("micro", oblivious, "cte"))
    return cells


def fig10b_normalized_to_ideal(w_sweep=DEFAULT_W_SWEEP,
                               workloads=WORKLOADS) -> ExperimentResult:
    ensure_cells("fig10b", fig10b_cells(w_sweep, workloads))
    headers = ["scheme"] + [f"W={w}" for w in w_sweep]
    sempe_norms: list[float] = []
    cte_norms: list[float] = []
    for w in w_sweep:
        sempe_vals = []
        cte_vals = []
        for workload in workloads:
            natural, oblivious = _micro_trio(workload, w)
            ideal_spec = MicrobenchSpec(workload, w=w,
                                        iters=MICRO_ITERS[workload],
                                        variant="unconditional")
            ideal = run_microbench(ideal_spec, "plain")
            sempe = run_microbench(natural, "sempe")
            cte = run_microbench(oblivious, "cte")
            sempe_vals.append(sempe.cycles / ideal.cycles)
            cte_vals.append(cte.cycles / ideal.cycles)
        sempe_norms.append(sum(sempe_vals) / len(sempe_vals))
        cte_norms.append(sum(cte_vals) / len(cte_vals))
    rows = [
        ["SeMPE / ideal"] + [f"{value:.2f}" for value in sempe_norms],
        ["FaCT/CTE / ideal"] + [f"{value:.2f}" for value in cte_norms],
    ]
    return ExperimentResult(
        "Fig. 10b", headers, rows,
        series={"sempe": sempe_norms, "cte": cte_norms},
    )


# --------------------------------------------------------------------------
# Victim matrix — overhead per registered workload (the registry sweep)
# --------------------------------------------------------------------------

def victims_cells(**_ignored) -> list[SweepCell]:
    """Every registered workload × its parameter grid × plain/sempe."""
    cells: list[SweepCell] = []
    for spec in iter_workloads():
        for params in spec.grid_points():
            run_spec = WorkloadRunSpec(spec.name, params)
            cells.append(SweepCell("workload", run_spec, "plain"))
            cells.append(SweepCell("workload", run_spec, "sempe"))
    return cells


def victims_overhead(**_ignored) -> ExperimentResult:
    """SeMPE overhead across the full victim-workload matrix."""
    ensure_cells("victims", victims_cells())
    headers = ["victim", "params", "secret", "plain cycles",
               "sempe cycles", "overhead"]
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {}
    for spec in iter_workloads():
        overheads: list[float] = []
        for params in spec.grid_points():
            run_spec = WorkloadRunSpec(spec.name, params)
            base = run_workload(run_spec, "plain")
            sempe = run_workload(run_spec, "sempe")
            overhead = sempe.cycles / base.cycles
            overheads.append(overhead)
            tag = ",".join(f"{key}={params[key]}" for key in sorted(params))
            rows.append([spec.name, tag, spec.secret, base.cycles,
                         sempe.cycles, f"{overhead:.2f}x"])
        series[spec.name] = overheads
    return ExperimentResult("Victim matrix", headers, rows, series=series)


# --------------------------------------------------------------------------
# Leak matrix — per-victim noninterference verdicts (baseline vs SeMPE)
# --------------------------------------------------------------------------

def leakmatrix_cells(**_ignored) -> list[SweepCell]:
    """Leak analysis needs per-secret observation traces, which do not
    flow through the run cache; the matrix renders live."""
    return []


def _leak_config() -> MachineConfig:
    """A compact machine for the leak matrix.

    Leak verdicts do not depend on structure sizes (the baseline leak
    and the SeMPE closure both hold on any machine); the small caches
    and windows of :func:`~repro.uarch.config.fast_functional` — the
    same machine the attack engine defaults to — just keep the
    per-secret simulations quick.
    """
    return fast_functional()


def leakmatrix(defenses: tuple[str, ...] | None = None,
               **_ignored) -> ExperimentResult:
    """Noninterference verdicts for every victim × defense.

    The baseline must leak every declared channel; SeMPE must close
    them all; every other scheme must close (at least) the channels it
    declares protected — its *claims* — while the rest stay honest
    about still leaking.
    """
    from repro.security.leakage import victim_report

    config = _leak_config()
    defenses = tuple(defenses) if defenses else tuple(defense_names())
    headers = ["victim", "defense", "leaking channels", "verdict"]
    rows: list[list[object]] = []
    series: dict[str, dict[str, object]] = {}
    for spec in iter_workloads():
        per_defense: dict[str, dict[str, object]] = {}
        for name in defenses:
            scheme = get_defense(name)
            report = victim_report(spec, name, config=config)
            leaking = report.leaking_channels()
            claims = [c for c in scheme.protects if c in spec.channels]
            broken = [c for c in claims if c in leaking]
            if name == "plain":
                missing = [c for c in spec.channels if c not in leaking]
                verdict = (f"LEAKS ({len(leaking)} ch)" if not missing
                           else f"UNDECLARED-TIGHT {missing}")
                ok = not missing
            elif not leaking:
                verdict = "closed"
                ok = True
            elif not broken:
                verdict = f"claims hold ({len(claims)} ch)"
                ok = True
            else:
                verdict = f"CLAIM BROKEN {broken}"
                ok = False
            per_defense[name] = {"leaking": leaking, "claims": claims,
                                 "ok": ok}
            rows.append([spec.name, name,
                         ", ".join(leaking) or "none", verdict])
        # SeMPE's closure claim is architectural: dual-path execution
        # says nothing about the wrong path, so a transient-only leak
        # (the spectre gadget under an open window) does not falsify
        # it — the fence row of the spectre experiment owns that story.
        from repro.security.leakage import CHANNELS as _ARCH_CHANNELS

        series[spec.name] = {
            "baseline_leaks": per_defense.get("plain", {}).get(
                "leaking", []),
            "sempe_secure": not [
                c for c in per_defense.get("sempe", {}).get(
                    "leaking", ["unchecked"])
                if c in _ARCH_CHANNELS or c == "unchecked"],
            "defenses": per_defense,
        }
    return ExperimentResult("Leak matrix", headers, rows, series=series)


# --------------------------------------------------------------------------
# Attack matrix — every victim x every applicable adversary, both machines
# --------------------------------------------------------------------------

ATTACK_ENGINES = ("fast", "batch", "reference")
ATTACK_TRIALS = 32


def attacks_cells(defenses: tuple[str, ...] = DEFAULT_ATTACK_DEFENSES,
                  **_ignored) -> list[SweepCell]:
    """Every registered workload x applicable attacker x defense x
    {fast, batch, reference} — the full three-axis adversarial product,
    as sweep cells (so ``repro sweep attacks --jobs N`` fans the trials
    out across the pool and caches the reports in the store)."""
    cells: list[SweepCell] = []
    for spec in iter_workloads():
        for attacker in applicable_attackers(spec):
            attack = AttackSpec(spec.name, attacker, trials=ATTACK_TRIALS)
            for mode in defenses:
                for engine in ATTACK_ENGINES:
                    cells.append(SweepCell("attack", attack, mode,
                                           None, engine))
    return cells


def attack_matrix(defenses: tuple[str, ...] = DEFAULT_ATTACK_DEFENSES,
                  **_ignored) -> ExperimentResult:
    """Key recovery per victim/attacker across the defense axis.

    The headline security table: on the baseline machine every
    applicable adversary recovers the victim's key; under SeMPE every
    one of them degrades to chance; every other scheme drives the
    attackers on its declared-protected channels to chance — with
    identical verdicts from the reference and the fast engine.  A
    ``!`` marks a verdict that contradicts the defense's claim.
    """
    ensure_cells("attacks", attacks_cells(defenses))
    headers = ["victim", "attacker", "channel", *defenses, "engines"]
    rows: list[list[object]] = []
    series: dict[tuple[str, str], dict[str, object]] = {}
    for spec in iter_workloads():
        for attacker in applicable_attackers(spec):
            attack = AttackSpec(spec.name, attacker, trials=ATTACK_TRIALS)
            reports = {
                (mode, engine): run_attack(attack, mode,
                                           engine=engine).report
                for mode in defenses
                for engine in ATTACK_ENGINES
            }
            agree = all(
                reports[(mode, engine)].verdict
                == reports[(mode, ATTACK_ENGINES[0])].verdict
                for mode in defenses for engine in ATTACK_ENGINES)
            verdicts = {mode: reports[(mode, ATTACK_ENGINES[0])].verdict
                        for mode in defenses}
            row: list[object] = [
                spec.name, attacker,
                reports[(defenses[0], ATTACK_ENGINES[0])].channel]
            for mode in defenses:
                expected = expected_verdict(attacker, mode)
                flag = ("" if expected is None
                        or verdicts[mode] == expected else " !")
                row.append(verdicts[mode] + flag)
            row.append("agree" if agree else "DIVERGE")
            rows.append(row)
            entry: dict[str, object] = {
                "engines_agree": agree,
                "defenses": verdicts,
            }
            if "plain" in verdicts:
                entry["baseline"] = verdicts["plain"]
            if "sempe" in verdicts:
                entry["sempe"] = verdicts["sempe"]
            series[(spec.name, attacker)] = entry
    return ExperimentResult("Attack matrix", headers, rows, series=series)


# --------------------------------------------------------------------------
# Verify matrix — static prediction vs dynamic observation, every pair
# --------------------------------------------------------------------------

def verify_cells(defenses: tuple[str, ...] | None = None,
                 **_ignored) -> list[SweepCell]:
    """Every registered workload × every registered defense, as verify
    cells (static analysis + transform lint + dynamic noninterference
    on the leak-matrix machine)."""
    defenses = tuple(defenses) if defenses else tuple(defense_names())
    config = _leak_config()
    cells: list[SweepCell] = []
    for spec in iter_workloads():
        verify = VerifySpec(spec.name)
        for name in defenses:
            cells.append(SweepCell("verify", verify, name, config))
    return cells


def verifymatrix(defenses: tuple[str, ...] | None = None,
                 **_ignored) -> ExperimentResult:
    """The static-vs-dynamic differential gate over the full grid.

    For every workload × defense pair the static prediction must cover
    everything the dynamic experiment observes (soundness) and the
    compiled output must satisfy the defense's structural invariants.
    ``static-only`` channels are the expected attacker/observer gap and
    are reported, not flagged; any ``dynamic-only`` channel or
    transform violation makes the pair's verdict non-``ok`` and the
    experiment's ``series["all_ok"]`` false — that is the CI gate.
    """
    defenses = tuple(defenses) if defenses else tuple(defense_names())
    config = _leak_config()
    ensure_cells("verify", verify_cells(defenses))
    headers = ["victim", "defense", "predicted", "dynamic",
               "static-only", "dynamic-only", "verdict"]
    rows: list[list[object]] = []
    series: dict[str, object] = {}
    pairs: dict[tuple[str, str], dict[str, object]] = {}
    failing = 0
    for spec in iter_workloads():
        verify = VerifySpec(spec.name)
        for name in defenses:
            report = run_verify(verify, name, config=config).report
            verdict = "ok" if report.ok else (
                "UNSOUND" if not report.sound else "TRANSFORM-VIOLATION")
            if not report.ok:
                failing += 1
            rows.append([
                spec.name, name,
                ", ".join(report.predicted) or "none",
                ", ".join(report.dynamic) or "none",
                ", ".join(report.static_only) or "-",
                ", ".join(report.dynamic_only) or "-",
                verdict,
            ])
            pairs[(spec.name, name)] = {
                "ok": report.ok,
                "sound": report.sound,
                "predicted": list(report.predicted),
                "dynamic": list(report.dynamic),
                "dynamic_only": list(report.dynamic_only),
                "violations": len(report.violations),
            }
    series["pairs"] = pairs
    series["failing"] = failing
    series["all_ok"] = failing == 0
    return ExperimentResult("Verify matrix", headers, rows, series=series)


# --------------------------------------------------------------------------
# Spectre — the transient-execution threat model, end to end
# --------------------------------------------------------------------------

def spectre_cells(defenses: tuple[str, ...] | None = None,
                  **_ignored) -> list[SweepCell]:
    """The spectre victim's full adversarial row: mistraining attack
    (all three engines) plus the verify differential, per defense."""
    defenses = tuple(defenses) if defenses else tuple(defense_names())
    attack = AttackSpec("spectre", "mistrain-reload",
                        trials=ATTACK_TRIALS)
    config = _leak_config()
    cells: list[SweepCell] = []
    for mode in defenses:
        for engine in ATTACK_ENGINES:
            cells.append(SweepCell("attack", attack, mode, None, engine))
        cells.append(SweepCell("verify", VerifySpec("spectre"),
                               mode, config))
    return cells


def spectre_matrix(defenses: tuple[str, ...] | None = None,
                   **_ignored) -> ExperimentResult:
    """Transient-execution verdicts for the spectre victim, per defense.

    Three columns tell the whole story: what the wrong path leaks
    (dynamic noninterference), what the mistraining adversary recovers
    (the attack engine, engines cross-checked), and whether the static
    speculative-taint prediction stayed sound (the verify
    differential).  The expected shape — the bounds-check-bypass gadget
    leaks under every architectural scheme and dies only under the
    fence — is asserted via ``series["all_expected"]``, the CI gate the
    spectre smoke lane checks.
    """
    from repro.security.leakage import victim_report

    defenses = tuple(defenses) if defenses else tuple(defense_names())
    config = _leak_config()
    ensure_cells("spectre", spectre_cells(defenses))
    attack = AttackSpec("spectre", "mistrain-reload",
                        trials=ATTACK_TRIALS)
    verify = VerifySpec("spectre")
    headers = ["defense", "transient leak", "attack verdict",
               "engines", "verify"]
    rows: list[list[object]] = []
    series: dict[str, object] = {}
    per_defense: dict[str, dict[str, object]] = {}
    all_expected = True
    for mode in defenses:
        leak = victim_report("spectre", mode, config=config)
        leaks = "transient-memory" in leak.leaking_channels()
        reports = {engine: run_attack(attack, mode, engine=engine).report
                   for engine in ATTACK_ENGINES}
        verdicts = {engine: r.verdict for engine, r in reports.items()}
        agree = len(set(verdicts.values())) == 1
        verdict = verdicts[ATTACK_ENGINES[0]]
        vreport = run_verify(verify, mode, config=config).report
        expected = expected_verdict("mistrain-reload", mode)
        ok = (agree and vreport.ok
              and (expected is None or verdict == expected)
              and leaks == (verdict != "chance"))
        all_expected = all_expected and ok
        flag = "" if expected is None or verdict == expected else " !"
        rows.append([mode,
                     "LEAKS" if leaks else "closed",
                     verdict + flag,
                     "agree" if agree else "DIVERGE",
                     "ok" if vreport.ok else "FAIL"])
        per_defense[mode] = {
            "transient_leaks": leaks,
            "attack_verdict": verdict,
            "engines_agree": agree,
            "verify_ok": vreport.ok,
            "expected": expected,
            "ok": ok,
        }
    series["defenses"] = per_defense
    series["all_expected"] = all_expected
    return ExperimentResult("Spectre (transient execution)", headers,
                            rows, series=series)


# --------------------------------------------------------------------------
# Defense matrix — per-scheme overhead across the victim registry
# --------------------------------------------------------------------------

def defensematrix_cells(**_ignored) -> list[SweepCell]:
    """Every victim (default parameters) × every registered defense."""
    cells: list[SweepCell] = []
    for spec in iter_workloads():
        run_spec = WorkloadRunSpec(spec.name, spec.resolve())
        for name in defense_names():
            cells.append(SweepCell("workload", run_spec, name))
    return cells


def defensematrix(**_ignored) -> ExperimentResult:
    """Execution-time cost of every scheme on every victim.

    The cost side of the defense story (the leak/attack matrices are
    the benefit side): cycles per victim under each registered scheme,
    normalized to the unprotected baseline.
    """
    ensure_cells("defensematrix", defensematrix_cells())
    headers = ["victim", *defense_names()]
    rows: list[list[object]] = []
    series: dict[str, dict[str, float]] = {}
    for spec in iter_workloads():
        run_spec = WorkloadRunSpec(spec.name, spec.resolve())
        base = run_workload(run_spec, "plain")
        row: list[object] = [spec.name]
        overheads: dict[str, float] = {}
        for name in defense_names():
            result = run_workload(run_spec, name)
            overhead = result.cycles / base.cycles
            overheads[name] = overhead
            row.append(f"{overhead:.2f}x")
        rows.append(row)
        series[spec.name] = overheads
    return ExperimentResult("Defense matrix", headers, rows, series=series)


# --------------------------------------------------------------------------
# Registry used by the CLI sweep command
# --------------------------------------------------------------------------

# name -> (cells builder, table renderer).  Both take the same sizing
# keywords, so the CLI can enumerate a grid and render its table from
# one source of truth; add new experiments here and nowhere else.
_REGISTRY = {
    "table1": (
        lambda w, w_sweep, sizes, workloads, formats:
            table1_cells(w, workloads),
        lambda w, w_sweep, sizes, workloads, formats:
            table1_comparison(w=w, workloads=workloads),
    ),
    "table2": (
        lambda w, w_sweep, sizes, workloads, formats: table2_cells(),
        lambda w, w_sweep, sizes, workloads, formats: table2_config(),
    ),
    "fig8": (
        lambda w, w_sweep, sizes, workloads, formats:
            fig8_cells(sizes, formats),
        lambda w, w_sweep, sizes, workloads, formats:
            fig8_djpeg_overhead(sizes=sizes, formats=formats),
    ),
    "fig9": (
        lambda w, w_sweep, sizes, workloads, formats:
            fig9_cells(sizes, formats),
        lambda w, w_sweep, sizes, workloads, formats:
            fig9_cache_missrates(sizes=sizes, formats=formats),
    ),
    "fig10a": (
        lambda w, w_sweep, sizes, workloads, formats:
            fig10a_cells(w_sweep, workloads),
        lambda w, w_sweep, sizes, workloads, formats:
            fig10a_microbench(w_sweep=w_sweep, workloads=workloads),
    ),
    "fig10b": (
        lambda w, w_sweep, sizes, workloads, formats:
            fig10b_cells(w_sweep, workloads),
        lambda w, w_sweep, sizes, workloads, formats:
            fig10b_normalized_to_ideal(w_sweep=w_sweep,
                                       workloads=workloads),
    ),
    "victims": (
        lambda w, w_sweep, sizes, workloads, formats: victims_cells(),
        lambda w, w_sweep, sizes, workloads, formats: victims_overhead(),
    ),
    "leakmatrix": (
        lambda w, w_sweep, sizes, workloads, formats: leakmatrix_cells(),
        lambda w, w_sweep, sizes, workloads, formats: leakmatrix(),
    ),
    "attacks": (
        lambda w, w_sweep, sizes, workloads, formats: attacks_cells(),
        lambda w, w_sweep, sizes, workloads, formats: attack_matrix(),
    ),
    "defensematrix": (
        lambda w, w_sweep, sizes, workloads, formats:
            defensematrix_cells(),
        lambda w, w_sweep, sizes, workloads, formats: defensematrix(),
    ),
    "verify": (
        lambda w, w_sweep, sizes, workloads, formats: verify_cells(),
        lambda w, w_sweep, sizes, workloads, formats: verifymatrix(),
    ),
    "spectre": (
        lambda w, w_sweep, sizes, workloads, formats: spectre_cells(),
        lambda w, w_sweep, sizes, workloads, formats: spectre_matrix(),
    ),
}

EXPERIMENTS = tuple(_REGISTRY)


def _lookup(name: str):
    entry = _REGISTRY.get(name)
    if entry is None:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"choose from {sorted(_REGISTRY)}")
    return entry


def experiment_cells(name: str, *, w: int = 10,
                     w_sweep=DEFAULT_W_SWEEP,
                     sizes=DEFAULT_DJPEG_SIZES,
                     workloads=WORKLOADS,
                     formats=FORMATS) -> list[SweepCell]:
    """The sweep grid of one named experiment (for ``repro sweep``)."""
    return _lookup(name)[0](w, w_sweep, sizes, workloads, formats)


def render_experiment(name: str, *, w: int = 10,
                      w_sweep=DEFAULT_W_SWEEP,
                      sizes=DEFAULT_DJPEG_SIZES,
                      workloads=WORKLOADS,
                      formats=FORMATS) -> ExperimentResult:
    """Regenerate one named experiment with the same sizing knobs."""
    return _lookup(name)[1](w, w_sweep, sizes, workloads, formats)
