"""Multiprocessing execution of sweep cells.

The simulator is pure Python and CPU-bound, so a sweep's cells —
independent ``(spec, mode, config, engine)`` simulations — are the
natural unit of process-level parallelism.  :func:`run_cells` shards
cells across a worker pool and merges the results so that the outcome
is *independent of scheduling*:

* **Deterministic per-cell seeds.**  Every cell derives its seed from
  its own structural fingerprint (not from a shared RNG stream or the
  submission index), so a cell is seeded identically whether it runs
  first or last, in one process or eight, alone or inside a bigger
  sweep.  The simulator itself is deterministic; the seed pins down
  Python's ``random`` module for any stochastic helper a workload might
  grow, keeping that determinism future-proof.
* **Submission-independent results.**  Workers return results as they
  finish (``imap_unordered``, so progress reporting is live) and the
  parent installs each one immediately.  Cache entries and store
  records are keyed by content fingerprint, so the *final state* is
  bit-identical for ``--jobs 1`` and ``--jobs 8`` regardless of
  completion order — and because installs are incremental, a cell that
  fails mid-sweep loses only itself: everything already completed is
  in the store, and a re-invocation resumes from there.

Workers are forked (or spawned) with an empty in-process cache and no
store; they return plain report dicts, and the parent owns all cache
and store writes, so stats stay coherent and the store sees exactly
one writer per record.
"""

from __future__ import annotations

import multiprocessing
import random
from typing import Callable, Iterable

from repro.core.engine import simulate
from repro.defenses.registry import get_defense
from repro.harness.runner import _report_from_dict, install_result
from repro.harness.store import fingerprint
from repro.security.attackers import execute_attack
from repro.workloads.djpeg import compile_djpeg
from repro.workloads.microbench import compile_microbench
from repro.workloads.registry import compile_workload

ProgressFn = Callable[[int, int, str], None]


def cell_seed(fp: str) -> int:
    """Deterministic seed for the cell with fingerprint *fp*.

    The leading 64 bits of the content address: stable across
    processes, machines, and shard assignments.
    """
    return int(fp[:16], 16)


def _execute_payload(payload: tuple) -> tuple[str, str, str, dict]:
    """Worker body: simulate one cell, return a picklable record.

    ``payload`` is ``(fingerprint, kind, spec, mode, config, engine)``.
    Returns ``(fingerprint, name, mode, report_dict)``.
    """
    fp, kind, spec, mode, config, engine = payload
    random.seed(cell_seed(fp))
    if kind == "attack":
        # Attack cells carry their own seeded RNG (derived from the
        # AttackSpec), so the result is identical in-process or pooled.
        return fp, spec.name, mode, execute_attack(
            spec, mode, config=config, engine=engine).to_dict()
    defense = get_defense(mode)
    if kind == "micro":
        compiled = compile_microbench(spec, defense.compile_mode)
    elif kind == "workload":
        compiled = compile_workload(spec, defense.compile_mode)
    else:
        compiled = compile_djpeg(spec, defense.compile_mode)
    report = simulate(compiled.program, defense=defense,
                      config=config, engine=engine)
    return fp, spec.name, mode, report.to_dict()


def _payload(cell) -> tuple:
    # The engine comes from the descriptor, not a fresh resolution: the
    # descriptor memoized the session default at construction time, and
    # the simulation must run on exactly the engine its fingerprint
    # claims even if the default changed since.
    descriptor = cell.descriptor()
    return (fingerprint(descriptor), cell.kind, cell.spec, cell.mode,
            cell.config, descriptor["engine"])


def run_cells(cells: Iterable, jobs: int = 1,
              progress: ProgressFn | None = None) -> int:
    """Simulate *cells* with *jobs* worker processes.

    Each result is installed into the run cache (and the configured
    store) as soon as it completes; the final state is independent of
    completion order because both levels are keyed by content
    fingerprint, and a failure mid-sweep keeps everything finished so
    far (the next invocation resumes from the store).  Returns the
    number of cells computed.  Cells already resident in the cache or
    store should be filtered out by the caller (see
    :func:`repro.harness.sweep.run_sweep`); any duplicates passed here
    are collapsed by fingerprint.
    """
    by_fp: dict[str, tuple] = {}
    for cell in cells:
        payload = _payload(cell)
        by_fp.setdefault(payload[0], (cell, payload))
    if not by_fp:
        return 0
    ordered = [entry[1] for _fp, entry in sorted(by_fp.items())]
    descriptors = {
        fp: entry[0].descriptor() for fp, entry in by_fp.items()}

    total = len(ordered)
    done = 0

    def _install(fp: str, name: str, mode: str, report: dict) -> None:
        nonlocal done
        descriptor = descriptors[fp]
        install_result(descriptor, name, mode,
                       _report_from_dict(descriptor["kind"], report))
        done += 1
        if progress is not None:
            progress(done, total, name)

    if jobs <= 1 or total == 1:
        # Per-cell seeding must not leak into the caller's RNG stream:
        # the parent's random state is identical whether cells ran here
        # or in worker processes.
        rng_state = random.getstate()
        try:
            for payload in ordered:
                _install(*_execute_payload(payload))
        finally:
            random.setstate(rng_state)
    else:
        with multiprocessing.Pool(processes=min(jobs, total)) as pool:
            for outcome in pool.imap_unordered(_execute_payload, ordered):
                _install(*outcome)
            pool.close()
            pool.join()
    return total
