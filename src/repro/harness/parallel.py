"""Fault-tolerant multiprocessing execution of sweep cells.

The simulator is pure Python and CPU-bound, so a sweep's cells —
independent ``(spec, mode, config, engine)`` simulations — are the
natural unit of process-level parallelism.  :func:`run_cells` shards
cells across a worker pool and merges the results so that the outcome
is *independent of scheduling*:

* **Deterministic per-cell seeds.**  Every cell derives its seed from
  its own structural fingerprint (not from a shared RNG stream or the
  submission index), so a cell is seeded identically whether it runs
  first or last, in one process or eight, alone or inside a bigger
  sweep.
* **Submission-independent results.**  The parent installs each result
  the moment it arrives; cache entries and store records are keyed by
  content fingerprint, so the *final state* is bit-identical for
  ``--jobs 1`` and ``--jobs 8`` regardless of completion order.
* **Failure is an outcome, not a crash.**  Workers never raise across
  the process boundary: every attempt returns a structured ``ok |
  error`` outcome (exception type, traceback, duration), and the
  parent turns permanent failures into JSON-safe
  :class:`~repro.harness.failures.CellFailure` records while the rest
  of the sweep keeps going.  Per-cell deadlines kill and respawn hung
  workers; a worker that dies outright (OOM kill, segfault) is detected
  through its process sentinel and replaced.  Transient failures retry
  with exponential backoff; persistent ones are quarantined in the
  store so resume skips them; a failing fast-engine simulation can fall
  back to the reference engine (the bit-exact oracle), flagged in the
  outcome.  All of it is governed by an
  :class:`~repro.harness.failures.ExecutionPolicy` and exercised by the
  deterministic fault-injection harness in :mod:`repro.testing.faults`.

Workers are forked with an empty in-process cache and no store; they
return plain outcome dicts, and the parent owns all cache, store, and
quarantine writes, so stats stay coherent and the store sees exactly
one writer per record.  The serial in-process path is used only when
no deadline or fault plan requires a killable host, and is then
byte-equivalent to the pooled path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import random
import time
import traceback as tb
from collections import deque
from typing import Callable, Iterable

from repro.analysis.differential import execute_verify
from repro.arch.executor import InstructionLimitError
from repro.core.engine import simulate
from repro.defenses.registry import get_defense
from repro.harness.failures import (
    FAILURE_EXCEPTION,
    FAILURE_FUEL,
    FAILURE_TIMEOUT,
    FAILURE_WORKER_DIED,
    RETRYABLE_FAILURES,
    CellFailure,
    ExecutionPolicy,
    RunOutcome,
    SweepInterrupted,
)
from repro.harness.runner import (
    _report_from_dict,
    get_store,
    install_result,
)
from repro.harness.store import fingerprint
from repro.security.attackers import execute_attack
from repro.workloads.djpeg import compile_djpeg
from repro.workloads.microbench import compile_microbench
from repro.workloads.registry import compile_workload

# progress(done, total, name, ok): one call per *resolved* cell —
# ``ok`` distinguishes an installed report from a permanent failure.
ProgressFn = Callable[[int, int, str, bool], None]

_DEFAULT_POLICY = ExecutionPolicy()


def cell_seed(fp: str) -> int:
    """Deterministic seed for the cell with fingerprint *fp*.

    The leading 64 bits of the content address: stable across
    processes, machines, and shard assignments.
    """
    return int(fp[:16], 16)


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _simulate_cell(kind, spec, mode, config, engine,
                   max_instructions):
    if kind == "attack":
        # Attack cells carry their own seeded RNG (derived from the
        # AttackSpec), so the result is identical in-process or pooled.
        # The fuel budget does not apply: an attack is many short
        # victim runs, each already bounded by the engine default.
        return execute_attack(spec, mode, config=config, engine=engine)
    if kind == "verify":
        # Verify cells are static analysis plus a fixed set of short
        # leak-parameter runs; like attacks, they manage their own
        # instruction budget.
        return execute_verify(spec, mode, config=config, engine=engine)
    defense = get_defense(mode)
    if kind == "micro":
        compiled = compile_microbench(spec, defense.compile_mode)
    elif kind == "workload":
        compiled = compile_workload(spec, defense.compile_mode)
    else:
        compiled = compile_djpeg(spec, defense.compile_mode)
    kwargs = {} if max_instructions is None else {
        "max_instructions": max_instructions}
    return simulate(compiled.program, defense=defense, config=config,
                    engine=engine, **kwargs)


def _execute_payload(payload: tuple) -> tuple[str, str, str, dict]:
    """Worker body: one attempt at one cell, returned as an outcome.

    ``payload`` is ``(fingerprint, kind, spec, mode, config, engine,
    attempt, max_instructions, fault_plan)``.  Returns ``(fingerprint,
    name, mode, outcome)`` where ``outcome`` is a picklable ``status:
    ok`` dict carrying the report, or a ``status: error`` dict carrying
    the structured failure — this function never raises on cell
    misbehavior, so one bad cell cannot poison the result channel.
    """
    (fp, kind, spec, mode, config, engine, attempt,
     max_instructions, plan) = payload
    random.seed(cell_seed(fp))
    start = time.perf_counter()
    try:
        if plan is not None:
            plan.apply(fp, attempt, engine=engine)
        report = _simulate_cell(kind, spec, mode, config, engine,
                                max_instructions)
    except Exception as error:
        failure = (FAILURE_FUEL
                   if isinstance(error, InstructionLimitError)
                   else FAILURE_EXCEPTION)
        return fp, spec.name, mode, {
            "status": "error",
            "failure": failure,
            "error_type": type(error).__name__,
            "message": str(error),
            "traceback": tb.format_exc(),
            "duration": time.perf_counter() - start,
        }
    return fp, spec.name, mode, {
        "status": "ok",
        "report": report.to_dict(),
        "duration": time.perf_counter() - start,
    }


def _worker_main(conn) -> None:
    """Long-lived worker loop: one payload in, one outcome out."""
    try:
        while True:
            try:
                payload = conn.recv()
            except EOFError:
                return
            if payload is None:
                return
            try:
                conn.send(_execute_payload(payload))
            except (BrokenPipeError, OSError):
                return
    except KeyboardInterrupt:
        return


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class _Task:
    """One cell's dispatch state: payload template + attempt counter."""

    __slots__ = ("fp", "kind", "base", "attempt", "not_before",
                 "fallback", "engine")

    def __init__(self, fp: str, kind: str, base: tuple) -> None:
        # base = (spec, mode, config, engine)
        self.fp = fp
        self.kind = kind
        self.base = base
        self.attempt = 1
        self.not_before = 0.0          # monotonic time gating retries
        self.fallback = False          # executing on the oracle engine
        self.engine = base[3]          # engine this attempt executes on

    def payload(self, policy: ExecutionPolicy) -> tuple:
        spec, mode, config, _engine = self.base
        return (self.fp, self.kind, spec, mode, config, self.engine,
                self.attempt, policy.max_instructions, policy.fault_plan)


class _Collector:
    """Parent-side outcome handling: install / retry / quarantine.

    All decisions are keyed by cell fingerprint and attempt number —
    never by arrival order — so the resolved state is identical for any
    job count.
    """

    def __init__(self, descriptors: dict[str, dict],
                 policy: ExecutionPolicy,
                 progress: ProgressFn | None,
                 outcome: RunOutcome) -> None:
        self.descriptors = descriptors
        self.policy = policy
        self.progress = progress
        self.outcome = outcome
        self.aborted = False

    # -- outcome entry points ---------------------------------------------

    def on_result(self, task: _Task, fp: str, name: str, mode: str,
                  result: dict) -> _Task | None:
        """Handle a worker-returned outcome; returns a follow-up task
        (retry or fallback) or ``None`` if the cell is resolved."""
        if result["status"] == "ok":
            self._install(task, fp, name, mode, result["report"])
            return None
        return self._failed(task, result["failure"], result)

    def on_timeout(self, task: _Task) -> _Task | None:
        deadline = self.policy.timeout or 0.0
        return self._failed(task, FAILURE_TIMEOUT, {
            "error_type": "",
            "message": f"cell exceeded the {deadline:g}s deadline "
                       "and was killed",
            "traceback": "",
            "duration": deadline,
        })

    def on_worker_death(self, task: _Task, exitcode) -> _Task | None:
        return self._failed(task, FAILURE_WORKER_DIED, {
            "error_type": "",
            "message": f"worker process died (exit code {exitcode}) "
                       "before returning a result",
            "traceback": "",
            "duration": 0.0,
        })

    # -- resolution --------------------------------------------------------

    def _install(self, task: _Task, fp: str, name: str, mode: str,
                 report: dict) -> None:
        descriptor = self.descriptors[fp]
        install_result(descriptor, name, mode,
                       _report_from_dict(descriptor["kind"], report))
        store = get_store()
        if store is not None:
            # A success supersedes any earlier poison marker.
            store.clear_failure(fp)
        self.outcome.computed += 1
        if task.fallback:
            self.outcome.fellback.append(name)
        self._report_progress(name, ok=True)

    def _failed(self, task: _Task, failure_kind: str,
                detail: dict) -> _Task | None:
        policy = self.policy
        descriptor = self.descriptors[task.fp]
        name = self._cell_name(task)
        if (failure_kind in RETRYABLE_FAILURES
                and task.attempt <= policy.retries):
            task.attempt += 1
            task.not_before = (time.monotonic()
                               + policy.backoff * 2 ** (task.attempt - 2))
            return task
        if (policy.fallback_reference and not task.fallback
                and task.engine in ("fast", "batch")
                and task.kind not in ("attack", "verify")):
            # Last resort before quarantine: one attempt on the
            # reference engine.  Simulation reports are engine-blind
            # (the parity suite guarantees bit-identity), so the result
            # installs under the cell's original fingerprint; attack
            # and verify reports embed the engine in their dynamic
            # side, so they never fall back.
            task.fallback = True
            task.engine = "reference"
            task.attempt += 1
            task.not_before = 0.0
            return task
        failure = CellFailure(
            fingerprint=task.fp,
            name=name,
            mode=descriptor["mode"],
            kind=task.kind,
            failure=failure_kind,
            error_type=detail.get("error_type", ""),
            message=detail.get("message", ""),
            traceback=detail.get("traceback", ""),
            attempts=task.attempt,
            duration=detail.get("duration", 0.0),
            engine=task.engine,
        )
        store = get_store()
        if store is not None:
            # Quarantine records are part of the deterministic final
            # store state; wall-clock durations are zeroed so --jobs 1
            # and --jobs 8 leave byte-identical records.
            record = failure.to_dict()
            record["duration"] = 0.0
            record["quarantined"] = True
            store.put_failure(task.fp, descriptor, record)
            failure.quarantined = True
        self.outcome.failures.append(failure)
        if (policy.max_failures is not None
                and len(self.outcome.failures) > policy.max_failures):
            self.aborted = True
            self.outcome.aborted = True
        self._report_progress(name, ok=False)
        return None

    def _cell_name(self, task: _Task) -> str:
        return task.base[0].name

    def _report_progress(self, name: str, ok: bool) -> None:
        if self.progress is not None:
            self.progress(self.outcome.resolved, self.outcome.total,
                          name, ok)


# -- serial path -----------------------------------------------------------

def _run_serial(tasks: list[_Task], collector: _Collector) -> None:
    # Per-cell seeding must not leak into the caller's RNG stream: the
    # parent's random state is identical whether cells ran here or in
    # worker processes.
    policy = collector.policy
    rng_state = random.getstate()
    queue = deque(tasks)
    try:
        while queue and not collector.aborted:
            task = queue.popleft()
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            fp, name, mode, result = _execute_payload(
                task.payload(policy))
            follow = collector.on_result(task, fp, name, mode, result)
            if follow is not None:
                queue.append(follow)
    except KeyboardInterrupt:
        raise SweepInterrupted(collector.outcome) from None
    finally:
        random.setstate(rng_state)


# -- pooled path -----------------------------------------------------------

class _Worker:
    """One worker process plus its dispatch bookkeeping."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main,
                                   args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: _Task | None = None
        self.deadline: float | None = None

    def assign(self, task: _Task, policy: ExecutionPolicy) -> None:
        self.task = task
        self.deadline = (None if policy.timeout is None
                         else time.monotonic() + policy.timeout)
        self.conn.send(task.payload(policy))

    def overdue(self, now: float) -> bool:
        return (self.task is not None and self.deadline is not None
                and now >= self.deadline)

    def stop(self) -> None:
        """Graceful shutdown of an idle worker."""
        try:
            self.conn.send(None)
        except OSError:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.conn.close()

    def kill(self) -> None:
        """Hard kill (hung or obsolete worker)."""
        self.process.kill()
        self.process.join()
        self.conn.close()


def _next_ready(pending: deque, now: float) -> _Task | None:
    """Pop the first task whose backoff gate has opened."""
    for _ in range(len(pending)):
        task = pending.popleft()
        if task.not_before <= now:
            return task
        pending.append(task)
    return None


def _poll_timeout(workers: list[_Worker], pending: deque,
                  now: float) -> float:
    """How long the dispatch loop may sleep in ``connection.wait``."""
    horizon = 0.5
    for worker in workers:
        if worker.task is not None and worker.deadline is not None:
            horizon = min(horizon, worker.deadline - now)
    for task in pending:
        if task.not_before > now:
            horizon = min(horizon, task.not_before - now)
    return max(horizon, 0.0)


def _run_pooled(tasks: list[_Task], jobs: int,
                collector: _Collector) -> None:
    policy = collector.policy
    ctx = multiprocessing.get_context()
    pending = deque(tasks)
    workers = [_Worker(ctx) for _ in range(jobs)]

    def _resolve(worker: _Worker, follow: _Task | None) -> None:
        worker.task = None
        worker.deadline = None
        if follow is not None:
            pending.append(follow)

    def _replace(index: int) -> None:
        workers[index].kill()
        workers[index] = _Worker(ctx)

    try:
        while not collector.aborted:
            now = time.monotonic()
            for worker in workers:
                if worker.task is None:
                    task = _next_ready(pending, now)
                    if task is None:
                        break
                    worker.assign(task, policy)
            busy = [w for w in workers if w.task is not None]
            if not busy:
                if not pending:
                    break
                # Every outstanding task is backing off; sleep until
                # the earliest gate opens.
                gate = min(task.not_before for task in pending)
                time.sleep(max(gate - time.monotonic(), 0.0))
                continue

            sources: dict[object, _Worker] = {}
            for worker in busy:
                sources[worker.conn] = worker
                sources[worker.process.sentinel] = worker
            ready = multiprocessing.connection.wait(
                list(sources), timeout=_poll_timeout(workers, pending,
                                                     now))
            touched = []
            for source in ready:
                worker = sources[source]
                if worker not in touched:
                    touched.append(worker)
            for worker in touched:
                if worker.task is None:
                    continue
                if worker.conn.poll():
                    try:
                        result = worker.conn.recv()
                    except (EOFError, OSError):
                        result = None
                    if result is not None:
                        task = worker.task
                        fp, name, mode, outcome = result
                        _resolve(worker, collector.on_result(
                            task, fp, name, mode, outcome))
                        continue
                if not worker.process.is_alive():
                    # Died without a result: OOM kill, segfault, or an
                    # injected "kill" fault.  Record, respawn, move on.
                    task = worker.task
                    exitcode = worker.process.exitcode
                    follow = collector.on_worker_death(task, exitcode)
                    index = workers.index(worker)
                    _replace(index)
                    workers[index].task = None
                    if follow is not None:
                        pending.append(follow)

            now = time.monotonic()
            for index, worker in enumerate(workers):
                if worker.overdue(now):
                    task = worker.task
                    follow = collector.on_timeout(task)
                    _replace(index)
                    if follow is not None:
                        pending.append(follow)
    except KeyboardInterrupt:
        for worker in workers:
            worker.kill()
        workers = []
        raise SweepInterrupted(collector.outcome) from None
    finally:
        for worker in workers:
            if worker.task is None:
                worker.stop()
            else:
                worker.kill()


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def _payload_base(cell) -> tuple:
    # The engine comes from the descriptor, not a fresh resolution: the
    # descriptor memoized the session default at construction time, and
    # the simulation must run on exactly the engine its fingerprint
    # claims even if the default changed since.
    descriptor = cell.descriptor()
    return (fingerprint(descriptor),
            (cell.spec, cell.mode, cell.config, descriptor["engine"]))


def run_cells(cells: Iterable, jobs: int = 1,
              progress: ProgressFn | None = None,
              policy: ExecutionPolicy | None = None) -> RunOutcome:
    """Simulate *cells* with *jobs* worker processes under *policy*.

    Each successful result is installed into the run cache (and the
    configured store) as soon as it resolves; each permanent failure
    becomes a :class:`~repro.harness.failures.CellFailure` (quarantined
    in the store when one is configured).  The final state is
    independent of completion order because installs, retries, and
    quarantine decisions are all keyed by content fingerprint.  Cells
    already resident in the cache or store should be filtered out by
    the caller (see :func:`repro.harness.sweep.run_sweep`); any
    duplicates passed here are collapsed by fingerprint.

    Raises :class:`~repro.harness.failures.SweepInterrupted` (a
    ``KeyboardInterrupt`` subclass carrying the partial outcome) on
    Ctrl-C; everything resolved before the interrupt is already
    installed.
    """
    policy = policy or _DEFAULT_POLICY
    by_fp: dict[str, tuple] = {}
    for cell in cells:
        fp, base = _payload_base(cell)
        by_fp.setdefault(fp, (cell, base))
    outcome = RunOutcome(total=len(by_fp))
    if not by_fp:
        return outcome
    tasks = [_Task(fp, entry[0].kind, entry[1])
             for fp, entry in sorted(by_fp.items())]
    descriptors = {
        fp: entry[0].descriptor() for fp, entry in by_fp.items()}

    collector = _Collector(descriptors, policy, progress, outcome)
    if jobs <= 1 and not policy.needs_isolation():
        _run_serial(tasks, collector)
    else:
        _run_pooled(tasks, min(max(jobs, 1), len(tasks)), collector)
    return outcome
