"""Failure as a first-class sweep outcome.

A sweep over untrusted or generated programs must survive misbehaving
cells: a cell that raises, a cell that never terminates, a worker that
the OS kills.  This module defines the vocabulary the fault-tolerant
execution layer (:mod:`repro.harness.parallel`) speaks:

* :class:`CellFailure` — a JSON-safe record of one cell's permanent
  failure (what kind, which exception, after how many attempts).  These
  are installed next to successful reports and persisted as quarantine
  records by the store, so resume never re-runs a known-poisonous cell
  endlessly;
* :class:`ExecutionPolicy` — how a sweep treats failure: per-cell
  deadline, bounded retry with exponential backoff, a permanent-failure
  budget, reference-engine fallback, the ``max_instructions`` fuel
  budget, and an optional deterministic fault plan
  (:mod:`repro.testing.faults`) for chaos testing;
* :class:`RunOutcome` — what one :func:`~repro.harness.parallel.run_cells`
  invocation produced: installed cells, permanent failures, fallbacks,
  and whether the failure budget aborted the sweep;
* :class:`SweepInterrupted` — Ctrl-C during a sweep, carrying the
  partial outcome so the CLI can summarize what finished instead of
  dumping a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# The failure taxonomy.  Every permanent failure is exactly one of:
FAILURE_EXCEPTION = "exception"        # the cell raised in the worker
FAILURE_TIMEOUT = "timeout"            # per-cell deadline exceeded (killed)
FAILURE_WORKER_DIED = "worker-died"    # worker process died (OOM, signal)
FAILURE_FUEL = "fuel-exhausted"        # max_instructions budget exhausted

FAILURE_KINDS = (FAILURE_EXCEPTION, FAILURE_TIMEOUT,
                 FAILURE_WORKER_DIED, FAILURE_FUEL)

# Fuel exhaustion is deterministic (the same program burns the same
# instructions on every attempt), so retrying it is pure waste.
RETRYABLE_FAILURES = (FAILURE_EXCEPTION, FAILURE_TIMEOUT,
                      FAILURE_WORKER_DIED)


@dataclass
class CellFailure:
    """One cell's permanent failure, JSON-safe for the quarantine store."""

    fingerprint: str
    name: str
    mode: str
    kind: str              # cell kind: micro | djpeg | workload | attack
    failure: str           # one of FAILURE_KINDS
    error_type: str = ""   # exception class name ("" for timeout/death)
    message: str = ""
    traceback: str = ""
    attempts: int = 1      # attempts consumed (1 = failed first try)
    duration: float = 0.0  # seconds spent on the final attempt
    engine: str = ""
    quarantined: bool = False  # a quarantine record exists for this cell

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "name": self.name,
            "mode": self.mode,
            "kind": self.kind,
            "failure": self.failure,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "duration": self.duration,
            "engine": self.engine,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellFailure":
        return cls(**{key: data[key] for key in cls.__dataclass_fields__
                      if key in data})

    def describe(self) -> str:
        what = self.error_type or self.failure
        detail = f": {self.message}" if self.message else ""
        return (f"{self.name}/{self.mode} [{self.failure}] "
                f"{what}{detail} (attempt {self.attempts})")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a sweep treats cell failure.

    The default policy is maximally conservative and changes nothing
    about a healthy sweep: no deadline, no retries, no failure budget,
    no fallback, fuel off (the engines' own 50M-instruction backstop
    still applies), no fault injection.
    """

    timeout: float | None = None       # per-attempt deadline, seconds
    retries: int = 0                   # extra attempts after the first
    backoff: float = 0.05              # base retry delay, doubles/attempt
    max_failures: int | None = None    # abort once failures exceed this
    fallback_reference: bool = False   # failed fast cells retry on oracle
    max_instructions: int | None = None  # per-cell fuel budget
    retry_quarantined: bool = False    # clear poison records and re-run
    fault_plan: "object | None" = None  # repro.testing.faults.FaultPlan

    def needs_isolation(self) -> bool:
        """Whether cells must run in worker processes even at jobs=1.

        A deadline can only be enforced on a killable process, and a
        fault plan may hang or kill its host — neither is survivable
        in the parent.
        """
        return self.timeout is not None or self.fault_plan is not None


@dataclass
class RunOutcome:
    """What one ``run_cells`` invocation produced."""

    total: int = 0                 # unique cells submitted
    computed: int = 0              # reports installed (incl. fallbacks)
    failures: list[CellFailure] = field(default_factory=list)
    fellback: list[str] = field(default_factory=list)  # cell names
    aborted: bool = False          # failure budget exceeded, stopped early
    interrupted: bool = False      # Ctrl-C stopped the sweep

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def resolved(self) -> int:
        return self.computed + self.failed

    @property
    def remaining(self) -> int:
        """Cells neither installed nor permanently failed."""
        return self.total - self.resolved

    @property
    def ok(self) -> bool:
        return (not self.failures and not self.aborted
                and not self.interrupted)


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C during a sweep, carrying the partial :class:`RunOutcome`.

    Subclasses :class:`KeyboardInterrupt` so callers that don't know
    about sweeps still see an ordinary interrupt.
    """

    def __init__(self, outcome: RunOutcome) -> None:
        super().__init__("sweep interrupted")
        outcome.interrupted = True
        self.outcome = outcome
        # run_sweep attaches its SweepStats on the way out, so the CLI
        # can summarize the whole partial sweep, not just run_cells.
        self.stats = None
