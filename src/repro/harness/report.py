"""Plain-text table rendering for experiment output."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, text in enumerate(row):
            widths[column] = max(widths[column], len(text))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(text.ljust(w) for text, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
