"""Experiment harness: sweeps, result caching, and table/figure rendering.

Every table and figure of the paper's evaluation has a function in
:mod:`repro.harness.experiments` that regenerates it; the benchmark
modules under ``benchmarks/`` are thin wrappers that time these and
print the rows.
"""

from repro.harness.runner import (
    RunResult,
    cache_info,
    clear_cache,
    run_djpeg,
    run_microbench,
)
from repro.harness.report import format_table
from repro.harness.experiments import (
    table1_comparison,
    table2_config,
    fig8_djpeg_overhead,
    fig9_cache_missrates,
    fig10a_microbench,
    fig10b_normalized_to_ideal,
    DEFAULT_W_SWEEP,
)

__all__ = [
    "RunResult",
    "run_microbench",
    "run_djpeg",
    "clear_cache",
    "cache_info",
    "format_table",
    "table1_comparison",
    "table2_config",
    "fig8_djpeg_overhead",
    "fig9_cache_missrates",
    "fig10a_microbench",
    "fig10b_normalized_to_ideal",
    "DEFAULT_W_SWEEP",
]
