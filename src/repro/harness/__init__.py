"""Experiment harness: sweeps, result caching, and table/figure rendering.

Every table and figure of the paper's evaluation has a function in
:mod:`repro.harness.experiments` that regenerates it; the benchmark
modules under ``benchmarks/`` are thin wrappers that time these and
print the rows.  :mod:`repro.harness.sweep` turns the grids behind
those functions into declarative, parallelizable batches, and
:mod:`repro.harness.store` persists their results across runs.
"""

from repro.harness.failures import (
    CellFailure,
    ExecutionPolicy,
    RunOutcome,
    SweepInterrupted,
)
from repro.harness.runner import (
    RunResult,
    cache_info,
    clear_cache,
    get_store,
    run_attack,
    run_djpeg,
    run_microbench,
    run_verify,
    run_workload,
    set_store,
    store_info,
)
from repro.harness.report import format_table
from repro.harness.store import ResultStore
from repro.harness.sweep import (
    SweepCell,
    SweepSpec,
    SweepStats,
    ensure_cells,
    run_sweep,
    set_default_jobs,
)
from repro.harness.experiments import (
    EXPERIMENTS,
    experiment_cells,
    render_experiment,
    table1_comparison,
    table2_config,
    fig8_djpeg_overhead,
    fig9_cache_missrates,
    fig10a_microbench,
    fig10b_normalized_to_ideal,
    victims_overhead,
    victims_cells,
    leakmatrix,
    attack_matrix,
    attacks_cells,
    defensematrix,
    defensematrix_cells,
    verifymatrix,
    verify_cells,
    DEFAULT_ATTACK_DEFENSES,
    DEFAULT_W_SWEEP,
)

__all__ = [
    "CellFailure",
    "ExecutionPolicy",
    "RunOutcome",
    "SweepInterrupted",
    "run_workload",
    "run_attack",
    "run_verify",
    "verifymatrix",
    "verify_cells",
    "attack_matrix",
    "attacks_cells",
    "victims_overhead",
    "victims_cells",
    "leakmatrix",
    "defensematrix",
    "defensematrix_cells",
    "DEFAULT_ATTACK_DEFENSES",
    "RunResult",
    "ResultStore",
    "SweepCell",
    "SweepSpec",
    "SweepStats",
    "run_microbench",
    "run_djpeg",
    "clear_cache",
    "cache_info",
    "set_store",
    "get_store",
    "store_info",
    "run_sweep",
    "ensure_cells",
    "set_default_jobs",
    "format_table",
    "EXPERIMENTS",
    "experiment_cells",
    "render_experiment",
    "table1_comparison",
    "table2_config",
    "fig8_djpeg_overhead",
    "fig9_cache_missrates",
    "fig10a_microbench",
    "fig10b_normalized_to_ideal",
    "DEFAULT_W_SWEEP",
]
