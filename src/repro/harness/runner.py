"""Run management: in-process memo cache backed by a persistent store.

Fig. 8 and Fig. 9 come from the same djpeg sweep, Fig. 10a/10b share the
microbenchmark sweep, and ``table1_comparison`` re-simulates the same
baselines repeatedly, so runs are memoized by ``(workload spec, mode,
config, engine)`` — each configuration is simulated once per session.

The cache key is the *structural fingerprint* of the whole cell: a
SHA-256 over the canonical JSON of a descriptor covering every spec
field, the compiler mode, all :class:`~repro.uarch.config.MachineConfig`
fields (recursively), and the engine.  Two equal configs built
independently hit the same entry; a config mutated between runs misses
instead of aliasing a stale report.  The same fingerprint addresses the
optional on-disk :class:`~repro.harness.store.ResultStore` (see
:func:`set_store`), which turns the memo cache into a two-level
hierarchy — L1 in-process, L2 persistent across runs — so a repeated
sweep is served from disk instead of re-simulated.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis.differential import (
    VerifyReport,
    VerifySpec,
    execute_verify,
)
from repro.core.engine import SimulationReport, get_default_engine, simulate
from repro.defenses.registry import get_defense
from repro.harness.store import ResultStore, SCHEMA_VERSION, fingerprint
from repro.security.attackers import AttackReport, AttackSpec, execute_attack
from repro.uarch.config import MachineConfig
from repro.workloads.djpeg import DjpegSpec, compile_djpeg
from repro.workloads.microbench import MicrobenchSpec, compile_microbench
from repro.workloads.registry import WorkloadRunSpec, compile_workload

_CACHE: dict[str, "RunResult"] = {}
_HITS = 0
_MISSES = 0
_STORE: ResultStore | None = None


@dataclass
class RunResult:
    """One evaluated configuration.

    ``report`` is a :class:`SimulationReport` for simulation cells, an
    :class:`~repro.security.attackers.AttackReport` for ``attack``
    cells, and a :class:`~repro.analysis.differential.VerifyReport` for
    ``verify`` cells; all round-trip through ``to_dict``/``from_dict``,
    which is all the cache hierarchy relies on.
    """

    name: str
    mode: str          # registered defense name (plain | sempe | ...)
    report: SimulationReport | AttackReport | VerifyReport

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def instructions(self) -> int:
        return self.report.instructions

    @property
    def miss_rates(self) -> dict[str, float]:
        return self.report.miss_rates


def config_fingerprint(config: MachineConfig | None) -> str | None:
    """Hashable structural identity of a machine configuration.

    The same canonical-JSON SHA-256 notion the cell descriptors use,
    restricted to the config — there is exactly one definition of
    "structural fingerprint" in the harness.
    """
    if config is None:
        return None
    return fingerprint(dataclasses.asdict(config))


def cell_descriptor(kind: str, spec, mode: str,
                    config: MachineConfig | None, engine: str) -> dict:
    """JSON-safe structural identity of one run (the store key).

    Covers every field that can change the simulation's output: the
    full workload spec, the defense (by name *and* structural
    fingerprint, so changing a scheme's hooks or overrides re-addresses
    its cached results), the whole machine configuration (recursively),
    the engine, and the report schema version so a schema bump
    re-addresses rather than misreads old records.
    """
    return {
        "kind": kind,
        "spec": dataclasses.asdict(spec),
        "mode": mode,
        "defense": get_defense(mode).fingerprint(),
        "config": None if config is None else dataclasses.asdict(config),
        "engine": engine,
        "schema": SCHEMA_VERSION,
    }


# --------------------------------------------------------------------------
# Cache / store management
# --------------------------------------------------------------------------

def clear_cache() -> None:
    """Drop all cached runs and reset the counters (used by tests).

    Also clears the pipeline-level timing memo
    (:mod:`repro.uarch.batch_pipeline`): tests that reset the run cache
    expect the *whole* memo hierarchy cold, not just the report level.
    """
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0
    from repro.uarch.batch_pipeline import clear_memo

    clear_memo()


def cache_info() -> dict[str, int]:
    """Hit/miss/size counters for the in-process run cache."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def set_store(store: ResultStore | None) -> ResultStore | None:
    """Install (or clear, with ``None``) the persistent result store.

    Returns the previously-installed store so callers can restore it.
    """
    global _STORE
    previous = _STORE
    _STORE = store
    return previous


def get_store() -> ResultStore | None:
    """The currently-installed persistent store, if any."""
    return _STORE


def store_info() -> dict[str, int] | None:
    """Hit/miss/store/invalidation counters, or ``None`` if no store."""
    if _STORE is None:
        return None
    return _STORE.stats.as_dict()


def _report_from_dict(kind: str, data: dict):
    """Rebuild the kind-appropriate report object from a store record."""
    if kind == "attack":
        return AttackReport.from_dict(data)
    if kind == "verify":
        return VerifyReport.from_dict(data)
    return SimulationReport.from_dict(data)


def install_result(descriptor: dict, name: str, mode: str,
                   report: SimulationReport | AttackReport) -> RunResult:
    """Adopt an externally-computed report into the cache hierarchy.

    Used by the parallel sweep layer: worker processes return report
    dicts, and the parent installs them here so later lookups (table
    assembly, further experiments) hit L1, and a configured store
    persists them exactly as if they had been simulated in-process.
    """
    fp = fingerprint(descriptor)
    result = RunResult(name=name, mode=mode, report=report)
    _CACHE[fp] = result
    if _STORE is not None and not _STORE.contains(fp):
        _STORE.put(fp, descriptor, report.to_dict())
    return result


def probe(descriptor: dict) -> str | None:
    """Where a cell's result currently lives: ``"cache"``, ``"store"``,
    or ``None`` (would have to be simulated).

    A probe is a cache lookup and counts like one — a resident cell is
    a hit, anything else a miss — so ``--cache-stats`` reflects sweep
    partitioning, not just table assembly.  A store probe *loads* the
    record into L1 (counting a store hit), so after
    ``probe(...) == "store"`` the next lookup is an L1 hit.
    """
    global _HITS, _MISSES
    fp = fingerprint(descriptor)
    if fp in _CACHE:
        _HITS += 1
        return "cache"
    _MISSES += 1
    if _STORE is not None:
        stored = _STORE.get(fp, descriptor)
        if stored is not None:
            spec = descriptor["spec"]
            name = _spec_name(descriptor["kind"], spec)
            _CACHE[fp] = RunResult(
                name=name, mode=descriptor["mode"],
                report=_report_from_dict(descriptor["kind"], stored))
            return "store"
    return None


def _spec_name(kind: str, spec_fields: dict) -> str:
    if kind == "micro":
        return MicrobenchSpec(**spec_fields).name
    if kind == "workload":
        return WorkloadRunSpec(**spec_fields).name
    if kind == "attack":
        return AttackSpec(**spec_fields).name
    if kind == "verify":
        return VerifySpec(**spec_fields).name
    return DjpegSpec(**spec_fields).name


# --------------------------------------------------------------------------
# Cached execution
# --------------------------------------------------------------------------

def _cached_run(descriptor: dict, compute, name: str, mode: str) -> RunResult:
    """L1 -> store -> *compute()* for one cell.

    ``compute`` produces the cell's report object (a simulation for the
    workload kinds, an attack run for ``attack`` cells); everything
    else — lookup, rebuild, installation — is kind-independent.
    """
    global _HITS, _MISSES
    fp = fingerprint(descriptor)
    cached = _CACHE.get(fp)
    if cached is not None:
        _HITS += 1
        return cached
    _MISSES += 1
    if _STORE is not None:
        stored = _STORE.get(fp, descriptor)
        if stored is not None:
            result = RunResult(
                name=name, mode=mode,
                report=_report_from_dict(descriptor["kind"], stored))
            _CACHE[fp] = result
            return result
    report = compute()
    result = RunResult(name=name, mode=mode, report=report)
    _CACHE[fp] = result
    if _STORE is not None:
        _STORE.put(fp, descriptor, report.to_dict())
    return result


def run_microbench(spec: MicrobenchSpec, mode: str,
                   config: MachineConfig | None = None,
                   engine: str | None = None) -> RunResult:
    """Simulate one microbenchmark configuration (cached).

    ``mode`` names the registered defense: it selects both the compiler
    transform and the machine hooks through the defense registry.
    """
    engine = engine or get_default_engine()
    defense = get_defense(mode)
    descriptor = cell_descriptor("micro", spec, mode, config, engine)
    return _cached_run(
        descriptor,
        lambda: simulate(
            compile_microbench(spec, defense.compile_mode).program,
            defense=defense, config=config, engine=engine),
        spec.name, mode)


def run_djpeg(spec: DjpegSpec, mode: str,
              config: MachineConfig | None = None,
              engine: str | None = None) -> RunResult:
    """Simulate one djpeg configuration (cached)."""
    engine = engine or get_default_engine()
    defense = get_defense(mode)
    descriptor = cell_descriptor("djpeg", spec, mode, config, engine)
    return _cached_run(
        descriptor,
        lambda: simulate(
            compile_djpeg(spec, defense.compile_mode).program,
            defense=defense, config=config, engine=engine),
        spec.name, mode)


def run_workload(spec: WorkloadRunSpec, mode: str,
                 config: MachineConfig | None = None,
                 engine: str | None = None) -> RunResult:
    """Simulate one registry-workload configuration (cached)."""
    engine = engine or get_default_engine()
    defense = get_defense(mode)
    descriptor = cell_descriptor("workload", spec, mode, config, engine)
    return _cached_run(
        descriptor,
        lambda: simulate(
            compile_workload(spec, defense.compile_mode).program,
            defense=defense, config=config, engine=engine),
        spec.name, mode)


def run_attack(spec: AttackSpec, mode: str,
               config: MachineConfig | None = None,
               engine: str | None = None) -> RunResult:
    """Evaluate one attack cell (cached).

    ``mode`` names the defense the victim runs under (``plain`` =
    unprotected baseline, ``sempe``, or any registered scheme); the
    resulting
    :class:`~repro.security.attackers.AttackReport` flows through the
    same two-level cache as simulation reports, so a repeated attack
    sweep is served from the store instead of re-attacked.
    """
    engine = engine or get_default_engine()
    descriptor = cell_descriptor("attack", spec, mode, config, engine)
    return _cached_run(
        descriptor,
        lambda: execute_attack(spec, mode, config=config, engine=engine),
        spec.name, mode)


def run_verify(spec: VerifySpec, mode: str,
               config: MachineConfig | None = None,
               engine: str | None = None) -> RunResult:
    """Evaluate one static-vs-dynamic verify cell (cached).

    Runs the workload × defense pair through the static analyzer, the
    defense-transform verifier, and the dynamic noninterference
    experiment; the resulting
    :class:`~repro.analysis.differential.VerifyReport` flows through
    the same two-level cache as simulation reports, so a repeated
    ``repro verify`` is served from the store.
    """
    engine = engine or get_default_engine()
    descriptor = cell_descriptor("verify", spec, mode, config, engine)
    return _cached_run(
        descriptor,
        lambda: execute_verify(spec, mode, config=config, engine=engine),
        spec.name, mode)
