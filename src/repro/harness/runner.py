"""Run management with in-process caching.

Fig. 8 and Fig. 9 come from the same djpeg sweep, Fig. 10a/10b share the
microbenchmark sweep, and ``table1_comparison`` re-simulates the same
baselines repeatedly, so runs are memoized by ``(workload spec, mode,
config, engine)`` — each configuration is simulated once per session.

The configuration part of the key is a *structural* fingerprint of the
:class:`~repro.uarch.config.MachineConfig` (all fields, recursively),
not an object identity: two equal configs built independently hit the
same cache entry, and a config that is mutated between runs misses
instead of aliasing a stale report.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.engine import SimulationReport, get_default_engine, simulate
from repro.uarch.config import MachineConfig
from repro.workloads.djpeg import DjpegSpec, compile_djpeg
from repro.workloads.microbench import MicrobenchSpec, compile_microbench

_CACHE: dict[tuple, "RunResult"] = {}
_HITS = 0
_MISSES = 0


@dataclass
class RunResult:
    """One simulated configuration."""

    name: str
    mode: str          # plain | sempe | cte
    report: SimulationReport

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def instructions(self) -> int:
        return self.report.instructions

    @property
    def miss_rates(self) -> dict[str, float]:
        return self.report.miss_rates


def config_fingerprint(config: MachineConfig | None) -> tuple | None:
    """Hashable structural identity of a machine configuration."""
    if config is None:
        return None
    return dataclasses.astuple(config)


def clear_cache() -> None:
    """Drop all cached runs and reset the counters (used by tests)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def cache_info() -> dict[str, int]:
    """Hit/miss/size counters for the run cache."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def _cached_run(key: tuple, compile_fn, name: str, mode: str,
                config: MachineConfig | None, engine: str) -> RunResult:
    global _HITS, _MISSES
    cached = _CACHE.get(key)
    if cached is not None:
        _HITS += 1
        return cached
    _MISSES += 1
    compiled = compile_fn()
    report = simulate(compiled.program, sempe=(mode == "sempe"),
                      config=config, engine=engine)
    result = RunResult(name=name, mode=mode, report=report)
    _CACHE[key] = result
    return result


def run_microbench(spec: MicrobenchSpec, mode: str,
                   config: MachineConfig | None = None,
                   engine: str | None = None) -> RunResult:
    """Simulate one microbenchmark configuration (cached).

    ``mode`` selects both the compiler mode and the machine: ``sempe``
    runs on the SeMPE machine, ``plain`` and ``cte`` on the baseline.
    """
    engine = engine or get_default_engine()
    key = ("micro", spec.workload, spec.w, spec.iters, spec.size,
           spec.variant, mode, config_fingerprint(config), engine)
    return _cached_run(key, lambda: compile_microbench(spec, mode),
                       spec.name, mode, config, engine)


def run_djpeg(spec: DjpegSpec, mode: str,
              config: MachineConfig | None = None,
              engine: str | None = None) -> RunResult:
    """Simulate one djpeg configuration (cached)."""
    engine = engine or get_default_engine()
    key = ("djpeg", spec.fmt, spec.npixels, spec.seed, mode,
           config_fingerprint(config), engine)
    return _cached_run(key, lambda: compile_djpeg(spec, mode),
                       spec.name, mode, config, engine)
