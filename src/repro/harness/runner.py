"""Run management with in-process caching.

Fig. 8 and Fig. 9 come from the same djpeg sweep and Fig. 10a/10b share
the microbenchmark sweep, so runs are cached by configuration key —
each (program, machine) pair is simulated once per session.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import SimulationReport, simulate
from repro.uarch.config import MachineConfig
from repro.workloads.djpeg import DjpegSpec, compile_djpeg
from repro.workloads.microbench import MicrobenchSpec, compile_microbench

_CACHE: dict[tuple, "RunResult"] = {}


@dataclass
class RunResult:
    """One simulated configuration."""

    name: str
    mode: str          # plain | sempe | cte
    report: SimulationReport

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def instructions(self) -> int:
        return self.report.instructions

    @property
    def miss_rates(self) -> dict[str, float]:
        return self.report.miss_rates


def clear_cache() -> None:
    """Drop all cached runs (used by tests)."""
    _CACHE.clear()


def run_microbench(spec: MicrobenchSpec, mode: str,
                   config: MachineConfig | None = None) -> RunResult:
    """Simulate one microbenchmark configuration (cached).

    ``mode`` selects both the compiler mode and the machine: ``sempe``
    runs on the SeMPE machine, ``plain`` and ``cte`` on the baseline.
    """
    key = ("micro", spec.workload, spec.w, spec.iters, spec.size,
           spec.variant, mode, id(config) if config else None)
    if key in _CACHE:
        return _CACHE[key]
    compiled = compile_microbench(spec, mode)
    report = simulate(compiled.program, sempe=(mode == "sempe"), config=config)
    result = RunResult(name=spec.name, mode=mode, report=report)
    _CACHE[key] = result
    return result


def run_djpeg(spec: DjpegSpec, mode: str,
              config: MachineConfig | None = None) -> RunResult:
    """Simulate one djpeg configuration (cached)."""
    key = ("djpeg", spec.fmt, spec.npixels, spec.seed, mode,
           id(config) if config else None)
    if key in _CACHE:
        return _CACHE[key]
    compiled = compile_djpeg(spec, mode)
    report = simulate(compiled.program, sempe=(mode == "sempe"), config=config)
    result = RunResult(name=spec.name, mode=mode, report=report)
    _CACHE[key] = result
    return result
