"""Out-of-order core timing model and branch predictors.

The pipeline is trace-driven: the functional executor produces the
committed dynamic instruction stream (plus SeMPE drain events) and the
timing model replays it through an 8-wide out-of-order core configured
per the paper's Table II.
"""

from repro.uarch.config import MachineConfig, haswell_like
from repro.uarch.pipeline import OutOfOrderPipeline, PipelineStats

__all__ = [
    "MachineConfig",
    "haswell_like",
    "OutOfOrderPipeline",
    "PipelineStats",
]
