"""TAGE conditional branch predictor (Seznec), sized ~31 KB per Table II.

This is a faithful-in-structure, compact-in-detail TAGE: a bimodal base
predictor plus N tagged components with geometrically increasing history
lengths.  Prediction comes from the longest-history component whose tag
matches; allocation on mispredictions picks a longer-history entry with
the useful bit clear.  The ``use_alt_on_new`` heuristic and the useful-bit
aging are implemented; (the full TAGE's loop predictor and statistical
corrector are omitted — they matter for SPEC-level accuracy, not for the
branch-channel behaviour studied here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.branch.base import BranchPredictor


@dataclass
class _TageEntry:
    tag: int = 0
    counter: int = 0   # signed 3-bit: -4..3, >=0 means taken
    useful: int = 0    # 2-bit useful counter


class Tage(BranchPredictor):
    """TAGE with a bimodal base and ``n_components`` tagged tables."""

    name = "tage"

    def __init__(
        self,
        n_components: int = 6,
        base_bits: int = 12,
        tagged_bits: int = 10,
        tag_bits: int = 9,
        min_history: int = 4,
        max_history: int = 128,
    ) -> None:
        super().__init__()
        self.n_components = n_components
        self.base_size = 1 << base_bits
        self.tagged_size = 1 << tagged_bits
        self.tag_bits = tag_bits
        self._base = [2] * self.base_size  # 2-bit counters

        # Geometric history lengths.
        self.history_lengths = []
        ratio = (max_history / min_history) ** (1 / max(n_components - 1, 1))
        length = float(min_history)
        for _ in range(n_components):
            self.history_lengths.append(int(round(length)))
            length *= ratio

        self._tables = [
            [_TageEntry() for _ in range(self.tagged_size)]
            for _ in range(n_components)
        ]
        self._history = 0          # global history as an int (newest bit 0)
        self._history_bits = max_history
        self._use_alt_on_new = 8   # 4-bit counter, >=8 favours alt
        self._allocation_tick = 0

        # Per-prediction scratch (filled by predict, used by update).
        self._last: tuple | None = None

    # -- hashing -----------------------------------------------------------

    def _folded_history(self, length: int, bits: int) -> int:
        history = self._history & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & ((1 << bits) - 1)
            history >>= bits
        return folded

    def _index(self, component: int, pc: int) -> int:
        length = self.history_lengths[component]
        folded = self._folded_history(length, self.tagged_size.bit_length() - 1)
        return (pc ^ (pc >> 4) ^ folded ^ (component << 3)) % self.tagged_size

    def _tag(self, component: int, pc: int) -> int:
        length = self.history_lengths[component]
        folded = self._folded_history(length, self.tag_bits)
        return (pc ^ (pc >> 7) ^ (folded << 1)) & ((1 << self.tag_bits) - 1)

    # -- interface ------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        provider = -1
        alt = -1
        provider_entry = None
        alt_entry = None
        for component in range(self.n_components - 1, -1, -1):
            entry = self._tables[component][self._index(component, pc)]
            if entry.tag == self._tag(component, pc):
                if provider < 0:
                    provider = component
                    provider_entry = entry
                elif alt < 0:
                    alt = component
                    alt_entry = entry
                    break

        base_prediction = self._base[pc & (self.base_size - 1)] >= 2
        alt_prediction = (
            alt_entry.counter >= 0 if alt_entry is not None else base_prediction
        )
        if provider_entry is not None:
            provider_prediction = provider_entry.counter >= 0
            weak = provider_entry.counter in (-1, 0)
            new_entry = provider_entry.useful == 0 and weak
            if new_entry and self._use_alt_on_new >= 8:
                prediction = alt_prediction
            else:
                prediction = provider_prediction
        else:
            prediction = base_prediction

        self._last = (pc, provider, provider_entry, alt_prediction, prediction)
        return prediction

    def update(self, pc: int, taken: bool) -> None:
        if self._last is None or self._last[0] != pc:
            self.predict(pc)
        _, provider, provider_entry, alt_prediction, prediction = self._last
        self._last = None

        # use_alt_on_new bookkeeping.
        if provider_entry is not None:
            weak = provider_entry.counter in (-1, 0)
            if provider_entry.useful == 0 and weak:
                provider_prediction = provider_entry.counter >= 0
                if provider_prediction != alt_prediction:
                    if alt_prediction == taken:
                        self._use_alt_on_new = min(self._use_alt_on_new + 1, 15)
                    else:
                        self._use_alt_on_new = max(self._use_alt_on_new - 1, 0)

        # Update the provider (or the base predictor).
        if provider_entry is not None:
            if taken:
                provider_entry.counter = min(provider_entry.counter + 1, 3)
            else:
                provider_entry.counter = max(provider_entry.counter - 1, -4)
            provider_prediction = provider_entry.counter >= 0
            if prediction == taken and alt_prediction != taken:
                provider_entry.useful = min(provider_entry.useful + 1, 3)
        else:
            index = pc & (self.base_size - 1)
            if taken:
                self._base[index] = min(self._base[index] + 1, 3)
            else:
                self._base[index] = max(self._base[index] - 1, 0)

        # Allocate on misprediction in a longer-history component.
        if prediction != taken and provider < self.n_components - 1:
            self._allocate(pc, taken, provider)

        # Useful-bit aging.
        self._allocation_tick += 1
        if self._allocation_tick % 262144 == 0:
            for table in self._tables:
                for entry in table:
                    entry.useful >>= 1

        # History update.
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._history_bits) - 1
        )

    def _allocate(self, pc: int, taken: bool, provider: int) -> None:
        for component in range(provider + 1, self.n_components):
            entry = self._tables[component][self._index(component, pc)]
            if entry.useful == 0:
                entry.tag = self._tag(component, pc)
                entry.counter = 0 if taken else -1
                entry.useful = 0
                return
        # No free entry: decay useful bits on the candidates.
        for component in range(provider + 1, self.n_components):
            entry = self._tables[component][self._index(component, pc)]
            entry.useful = max(entry.useful - 1, 0)

    def state_digest(self) -> int:
        tagged = tuple(
            (entry.tag, entry.counter, entry.useful)
            for table in self._tables
            for entry in table
        )
        return hash((tuple(self._base), tagged, self._history,
                     self._use_alt_on_new))

    def reset(self) -> None:
        self._base = [2] * self.base_size
        self._tables = [
            [_TageEntry() for _ in range(self.tagged_size)]
            for _ in range(self.n_components)
        ]
        self._history = 0
        self._use_alt_on_new = 8
        self._allocation_tick = 0
        self._last = None

    def storage_bits(self) -> int:
        """Approximate hardware budget (to check the ~31 KB target)."""
        base_bits = 2 * self.base_size
        entry_bits = self.tag_bits + 3 + 2
        tagged_bits = self.n_components * self.tagged_size * entry_bits
        return base_bits + tagged_bits
