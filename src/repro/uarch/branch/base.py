"""Predictor interface and trivial predictors."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredictorStats:
    """Lookup/mispredict counters."""

    lookups: int = 0
    mispredicts: int = 0

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class BranchPredictor:
    """Interface: predict, then update with the real outcome.

    The attacker-visible internal state can be fingerprinted with
    :meth:`state_digest`, used by the branch-predictor side-channel
    observer: SeMPE claims sJMPs never touch the predictor, so the digest
    must be independent of secrets.
    """

    name = "base"

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def record(self, predicted: bool, taken: bool) -> bool:
        """Bookkeeping helper: count a lookup, return mispredict flag."""
        self.stats.lookups += 1
        mispredicted = predicted != taken
        if mispredicted:
            self.stats.mispredicts += 1
        return mispredicted

    def state_digest(self) -> int:
        """Deterministic fingerprint of all predictor state."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class AlwaysTaken(BranchPredictor):
    """Static predict-taken."""

    name = "always-taken"

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def state_digest(self) -> int:
        return 0

    def reset(self) -> None:
        pass


class AlwaysNotTaken(BranchPredictor):
    """Static predict-not-taken."""

    name = "always-not-taken"

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass

    def state_digest(self) -> int:
        return 0

    def reset(self) -> None:
        pass
