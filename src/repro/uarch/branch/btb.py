"""Branch target buffer and return address stack."""

from __future__ import annotations


class BranchTargetBuffer:
    """Direct-mapped BTB: PC -> last-seen target."""

    def __init__(self, entries: int = 4096) -> None:
        self.entries = entries
        self._table: dict[int, tuple[int, int]] = {}  # index -> (pc, target)
        self.lookups = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int) -> int | None:
        """Return the cached target, or None on a BTB miss."""
        self.lookups += 1
        row = self._table.get(self._index(pc))
        if row is None or row[0] != pc:
            self.misses += 1
            return None
        return row[1]

    def update(self, pc: int, target: int) -> None:
        self._table[self._index(pc)] = (pc, target)

    def state_digest(self) -> int:
        return hash(tuple(sorted(self._table.items())))

    def reset(self) -> None:
        self._table.clear()
        self.lookups = 0
        self.misses = 0


class ReturnAddressStack:
    """Small LIFO of return addresses for call/return prediction."""

    def __init__(self, depth: int = 16) -> None:
        self.depth = depth
        self._stack: list[int] = []

    def push(self, return_address: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> int | None:
        if not self._stack:
            return None
        return self._stack.pop()

    def state_digest(self) -> int:
        return hash(tuple(self._stack))

    def reset(self) -> None:
        self._stack.clear()
