"""Branch predictors.

Table II specifies a 31 KB TAGE conditional predictor and a 6 KB ITTAGE
indirect predictor.  Simpler bimodal and gshare predictors are provided
for comparison and testing.  All predictors share the
:class:`BranchPredictor` interface consumed by the pipeline.
"""

from repro.uarch.branch.base import BranchPredictor, AlwaysTaken, AlwaysNotTaken
from repro.uarch.branch.bimodal import Bimodal
from repro.uarch.branch.gshare import GShare
from repro.uarch.branch.tage import Tage
from repro.uarch.branch.ittage import Ittage
from repro.uarch.branch.btb import BranchTargetBuffer, ReturnAddressStack

__all__ = [
    "BranchPredictor",
    "AlwaysTaken",
    "AlwaysNotTaken",
    "Bimodal",
    "GShare",
    "Tage",
    "Ittage",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "make_predictor",
]


def make_predictor(name: str) -> BranchPredictor:
    """Factory used by the pipeline configuration."""
    key = name.lower()
    if key == "tage":
        return Tage()
    if key == "gshare":
        return GShare()
    if key == "bimodal":
        return Bimodal()
    if key == "always-taken":
        return AlwaysTaken()
    if key == "always-not-taken":
        return AlwaysNotTaken()
    raise ValueError(f"unknown predictor {name!r}")
