"""Bimodal (per-PC 2-bit counter) predictor."""

from __future__ import annotations

from repro.uarch.branch.base import BranchPredictor


class Bimodal(BranchPredictor):
    """Classic table of 2-bit saturating counters indexed by PC."""

    name = "bimodal"

    def __init__(self, table_bits: int = 12) -> None:
        super().__init__()
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        self._counters = [2] * self.table_size  # weakly taken

    def _index(self, pc: int) -> int:
        return pc & (self.table_size - 1)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)

    def state_digest(self) -> int:
        return hash(tuple(self._counters))

    def reset(self) -> None:
        self._counters = [2] * self.table_size
