"""GShare predictor: global history XOR PC indexing."""

from __future__ import annotations

from repro.uarch.branch.base import BranchPredictor


class GShare(BranchPredictor):
    """2-bit counters indexed by PC xor global-history."""

    name = "gshare"

    def __init__(self, table_bits: int = 13, history_bits: int = 13) -> None:
        super().__init__()
        self.table_bits = table_bits
        self.history_bits = history_bits
        self.table_size = 1 << table_bits
        self._counters = [2] * self.table_size
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & (self.table_size - 1)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask

    def state_digest(self) -> int:
        return hash((tuple(self._counters), self._history))

    def reset(self) -> None:
        self._counters = [2] * self.table_size
        self._history = 0
