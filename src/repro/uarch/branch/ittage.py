"""ITTAGE-style indirect-target predictor (~6 KB per Table II).

Predicts the *target address* of indirect jumps (JALR) rather than a
taken/not-taken bit.  Structure mirrors TAGE: a PC-indexed base target
table plus tagged components indexed by folded global path history.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _IttageEntry:
    tag: int = 0
    target: int = 0
    confidence: int = 0   # 2-bit
    useful: int = 0


class Ittage:
    """Indirect-target predictor with TAGE-style tagged components."""

    name = "ittage"

    def __init__(
        self,
        n_components: int = 4,
        base_bits: int = 9,
        tagged_bits: int = 7,
        tag_bits: int = 9,
        min_history: int = 4,
        max_history: int = 64,
    ) -> None:
        self.base_size = 1 << base_bits
        self.tagged_size = 1 << tagged_bits
        self.tag_bits = tag_bits
        self.n_components = n_components
        self._base: list[int] = [0] * self.base_size
        self._tables = [
            [_IttageEntry() for _ in range(self.tagged_size)]
            for _ in range(n_components)
        ]
        ratio = (max_history / min_history) ** (1 / max(n_components - 1, 1))
        self.history_lengths = [
            int(round(min_history * ratio ** index)) for index in range(n_components)
        ]
        self._history = 0
        self._history_bits = max_history
        self.lookups = 0
        self.mispredicts = 0
        self._last: tuple | None = None

    def _folded(self, length: int, bits: int) -> int:
        history = self._history & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & ((1 << bits) - 1)
            history >>= bits
        return folded

    def _index(self, component: int, pc: int) -> int:
        folded = self._folded(self.history_lengths[component],
                              self.tagged_size.bit_length() - 1)
        return (pc ^ (pc >> 3) ^ folded ^ component) % self.tagged_size

    def _tag(self, component: int, pc: int) -> int:
        folded = self._folded(self.history_lengths[component], self.tag_bits)
        return (pc ^ (folded << 1)) & ((1 << self.tag_bits) - 1)

    def predict(self, pc: int) -> int:
        """Predicted target address (0 = no prediction)."""
        self.lookups += 1
        provider = -1
        provider_entry = None
        for component in range(self.n_components - 1, -1, -1):
            entry = self._tables[component][self._index(component, pc)]
            if entry.tag == self._tag(component, pc):
                provider = component
                provider_entry = entry
                break
        if provider_entry is not None:
            prediction = provider_entry.target
        else:
            prediction = self._base[pc & (self.base_size - 1)]
        self._last = (pc, provider, provider_entry, prediction)
        return prediction

    def update(self, pc: int, target: int) -> bool:
        """Update with the real target; returns True on mispredict."""
        if self._last is None or self._last[0] != pc:
            self.predict(pc)
            self.lookups -= 1
        _, provider, provider_entry, prediction = self._last
        self._last = None
        mispredicted = prediction != target
        if mispredicted:
            self.mispredicts += 1

        if provider_entry is not None:
            if provider_entry.target == target:
                provider_entry.confidence = min(provider_entry.confidence + 1, 3)
                provider_entry.useful = min(provider_entry.useful + 1, 3)
            else:
                if provider_entry.confidence > 0:
                    provider_entry.confidence -= 1
                else:
                    provider_entry.target = target
        else:
            self._base[pc & (self.base_size - 1)] = target

        if mispredicted and provider < self.n_components - 1:
            for component in range(provider + 1, self.n_components):
                entry = self._tables[component][self._index(component, pc)]
                if entry.useful == 0:
                    entry.tag = self._tag(component, pc)
                    entry.target = target
                    entry.confidence = 0
                    break
                entry.useful = max(entry.useful - 1, 0)

        # Fold several target-address bits into one path-history bit so
        # that targets differing only in high bits are distinguishable.
        folded_target = target ^ (target >> 4) ^ (target >> 8) ^ (target >> 12)
        path_bit = (folded_target ^ pc) & 1
        self._history = ((self._history << 1) | path_bit) & (
            (1 << self._history_bits) - 1
        )
        return mispredicted

    def state_digest(self) -> int:
        tagged = tuple(
            (entry.tag, entry.target, entry.confidence, entry.useful)
            for table in self._tables
            for entry in table
        )
        return hash((tuple(self._base), tagged, self._history))

    def reset(self) -> None:
        self._base = [0] * self.base_size
        for table in self._tables:
            for entry in table:
                entry.tag = entry.target = entry.confidence = entry.useful = 0
        self._history = 0
        self.lookups = 0
        self.mispredicts = 0
        self._last = None
