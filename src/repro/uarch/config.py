"""Machine configuration (the paper's Table II baseline model)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig


@dataclass
class SpeculationConfig:
    """The transient-execution window (off by default).

    When ``enabled``, the functional engines fork at every eligible
    conditional branch and emit the *wrong-path* instruction stream
    (up to ``window`` instructions) as transient trace records; the
    timing pipeline applies their cache/prefetcher touches whenever its
    own predictor mispredicted that branch — the squashed wrong path
    is exactly the predicted path then — and discards them otherwise.
    Disabled, no transient records exist anywhere and every trace,
    report, and golden is byte-identical to the pre-speculation model.
    """

    enabled: bool = False
    window: int = 32               # max wrong-path instructions in flight


@dataclass
class MachineConfig:
    """All tunables of the simulated core and memory system.

    Defaults follow Table II of the paper (a Haswell-like out-of-order
    core at 2 GHz).  The SPM snapshot size defaults to the paper's 7392
    bytes per SecBlock (48 x86_64 architectural registers); our ISA has 32
    registers but the timing uses the configured ``spm_arch_regs`` so the
    SPM traffic matches the paper's machine.
    """

    # Clock.
    clock_ghz: float = 2.0

    # Front end.
    fetch_width: int = 8           # instructions / cycle
    decode_width: int = 8          # uops / cycle
    rename_width: int = 8          # uops / cycle
    frontend_depth: int = 6        # fetch->dispatch stages (refill penalty)

    # Back end.
    issue_width: int = 8           # uops / cycle
    load_issue_width: int = 2      # loads / cycle
    retire_width: int = 12         # uops / cycle
    rob_entries: int = 192
    int_phys_regs: int = 256
    fp_phys_regs: int = 256
    int_issue_buffer: int = 60
    fp_issue_buffer: int = 60
    load_queue: int = 32
    store_queue: int = 32

    # Execution latencies (cycles) by op class.
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 20
    branch_latency: int = 1
    cmov_latency: int = 1

    # Branch prediction.
    predictor: str = "tage"        # "tage", "gshare", "bimodal", "always-taken"
    tage_storage_kb: int = 31      # paper: 31KB TAGE
    mispredict_penalty: int = 14   # full-pipe restart (Haswell-like)

    # Memory system.
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    # Transient execution (the Spectre-class threat model).
    speculation: SpeculationConfig = field(default_factory=SpeculationConfig)

    # SeMPE-specific hardware.
    jbtable_depth: int = 30
    spm_slots: int = 30
    spm_arch_regs: int = 48        # paper's x86_64 architectural state
    spm_bytes_per_cycle: int = 64
    snapshot_mechanism: str = "archrs"

    def latency_for(self, opclass_name: str) -> int:
        """Execution latency (excluding memory) for an op-class name."""
        table = {
            "alu": self.alu_latency,
            "mul": self.mul_latency,
            "div": self.div_latency,
            "branch": self.branch_latency,
            "jump": self.branch_latency,
            "ijump": self.branch_latency,
            "cmov": self.cmov_latency,
            "eosjmp": 1,
            "sys": 1,
            "store": 1,   # address generation; data is written at commit
        }
        return table.get(opclass_name, 1)


def haswell_like() -> MachineConfig:
    """The Table II configuration."""
    return MachineConfig()


def fast_functional() -> MachineConfig:
    """A smaller configuration for quick unit tests."""
    config = MachineConfig()
    config.rob_entries = 64
    config.int_issue_buffer = 24
    config.fp_issue_buffer = 24
    config.hierarchy = HierarchyConfig(
        il1=CacheConfig(name="IL1", size_bytes=4 * 1024, assoc=2, hit_latency=1),
        dl1=CacheConfig(name="DL1", size_bytes=8 * 1024, assoc=2, hit_latency=2),
        l2=CacheConfig(name="L2", size_bytes=64 * 1024, assoc=2, hit_latency=12),
    )
    return config
