"""cProfile-backed per-phase breakdown of a timing-model run.

The out-of-order pipeline is one fused loop, so a flat profile does not
say where the cycles go.  :func:`phase_breakdown` buckets ``tottime`` by
*model phase* instead of by function:

* ``fetch``    — instruction-side hierarchy walks and the branch
  predictors (TAGE/BTB/ITTAGE/RAS) — the front end;
* ``memory``   — data-side hierarchy walks, caches, prefetchers;
* ``schedule`` — the pipeline loop's own ``tottime``: rename, dispatch,
  issue-port and ROB/LSQ accounting, commit (the fused loop makes these
  inseparable without instrumenting the hot path, which would slow the
  thing being measured);
* ``functional`` — the architectural executors (``repro.arch``);
* ``other``    — everything else (harness, hashing, I/O).

``repro run --profile-pipeline`` and ``REPRO_BENCH_PROFILE=1`` on the
perf benchmark both print this table, so the next perf PR starts from
data rather than guesses.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager

_FETCH_FUNCS = frozenset((
    "access_instruction", "fetch_latency",
))
_MEMORY_FUNCS = frozenset((
    "access_data", "data_latency",
))
# Module-path fragments checked against the profiled filename.
_FETCH_MODULES = ("uarch/branch",)
_MEMORY_MODULES = ("mem/cache", "mem/hierarchy", "mem/prefetch")
_SCHEDULE_MODULES = ("uarch/pipeline", "uarch/batch_pipeline")
_FUNCTIONAL_MODULES = ("arch/", "isa/", "mem/memory", "mem/scratchpad")

PHASES = ("fetch", "memory", "schedule", "functional", "other")


def _classify(filename: str, funcname: str) -> str:
    path = filename.replace("\\", "/")
    if funcname in _FETCH_FUNCS or any(m in path for m in _FETCH_MODULES):
        return "fetch"
    if funcname in _MEMORY_FUNCS or any(m in path for m in _MEMORY_MODULES):
        return "memory"
    if any(m in path for m in _SCHEDULE_MODULES):
        return "schedule"
    if any(m in path for m in _FUNCTIONAL_MODULES):
        return "functional"
    return "other"


def phase_breakdown(profile: cProfile.Profile) -> dict[str, float]:
    """Seconds of ``tottime`` per model phase (every phase present)."""
    totals = dict.fromkeys(PHASES, 0.0)
    for (filename, _lineno, funcname), row in \
            pstats.Stats(profile).stats.items():
        tottime = row[2]
        totals[_classify(filename, funcname)] += tottime
    return totals


def format_breakdown(profile: cProfile.Profile) -> str:
    """The ``--profile-pipeline`` table: per-phase seconds and shares."""
    totals = phase_breakdown(profile)
    grand = sum(totals.values()) or 1.0
    lines = ["pipeline profile (tottime by model phase):"]
    for phase in PHASES:
        seconds = totals[phase]
        lines.append(f"  {phase:<10} {seconds:8.3f}s  "
                     f"{100.0 * seconds / grand:5.1f}%")
    lines.append(f"  {'total':<10} {grand:8.3f}s")
    return "\n".join(lines)


@contextmanager
def profiled_pipeline():
    """Profile a block and print the phase table when it exits."""
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        print(format_breakdown(profile))
