"""Trace-driven out-of-order pipeline timing model.

The model consumes the committed dynamic instruction stream (plus SeMPE
drain events) from the functional executor and computes a cycle count for
an 8-wide out-of-order core (Table II).  It is a *dataflow + resource
reservation* model — per instruction it computes fetch, dispatch, issue,
complete and commit cycles subject to:

* fetch bandwidth (``fetch_width``/cycle, one taken branch per group),
  instruction-cache latency per new line, redirect penalties;
* branch prediction — TAGE for conditional branches, RAS+ITTAGE for
  indirect jumps; a misprediction blocks fetch until the branch executes
  plus the front-end refill penalty.  Secure branches (sJMP) in SeMPE
  mode never consult the predictor and never mispredict (§IV-E);
* register dataflow (true RAW dependences only — the machine renames, so
  WAW/WAR never stall) and store-to-load forwarding;
* issue bandwidth, the issue-queue size, load-issue width, ROB and LSQ
  occupancy, retire bandwidth;
* functional-unit latencies and load latencies from the cache hierarchy;
* SeMPE drains: fetch stops until the ROB is empty, then waits for the
  SPM transfer (Fig. 6).

This style of model is much faster in Python than a strict cycle loop
and captures the effects the paper's evaluation depends on (dual-path
execution cost, drain overhead, cache locality, mispredictions).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from repro.arch.trace import (
    DynInstr, TRANSIENT_PC_BASE, TraceChunk, TraceRecord, TransientInstr,
)
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.opcodes import Op, OpClass, OPCLASSES, OPCLASS_ID, OP_ID
from repro.isa.registers import NUM_REGS
from repro.mem.hierarchy import MemoryHierarchy
from repro.uarch.branch import make_predictor, BranchTargetBuffer, ReturnAddressStack
from repro.uarch.branch.ittage import Ittage
from repro.uarch.config import MachineConfig


@dataclass
class PipelineStats:
    """Timing-model outputs."""

    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    mispredicts: int = 0
    indirect_mispredicts: int = 0
    drains: int = 0
    drain_cycles: int = 0
    spm_cycles: int = 0
    il1_misses: int = 0
    dl1_misses: int = 0
    l2_misses: int = 0
    il1_accesses: int = 0
    dl1_accesses: int = 0
    l2_accesses: int = 0
    # Transient execution (speculation window): wrong-path instructions
    # whose effects the pipeline applied (its predictor mispredicted the
    # forking branch), and the cache accesses among them.
    transient_instructions: int = 0
    transient_accesses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @classmethod
    def merge(cls, stats: "Iterable[PipelineStats]") -> "PipelineStats":
        """Field-wise sum of per-lane stats, lane-order independent.

        Every field is an int counter, so the merge is a plain sum —
        commutative and associative by construction, which is what lets
        batched aggregation (any lane order, any grouping) land on the
        same totals as summing serial per-lane runs.  ``cycles`` merges
        as a sum too: the aggregate is "total machine-cycles spent
        across lanes", the quantity campaign throughput is measured in.
        """
        total = cls()
        for entry in stats:
            for field_ in dataclasses.fields(cls):
                setattr(total, field_.name,
                        getattr(total, field_.name)
                        + getattr(entry, field_.name))
        return total


class _BandwidthTable:
    """cycle -> used-slots map with find-first-available semantics."""

    __slots__ = ("width", "_used", "_floor")

    def __init__(self, width: int) -> None:
        self.width = width
        self._used: dict[int, int] = {}
        self._floor = 0

    def __len__(self) -> int:
        return len(self._used)

    def reserve(self, earliest: int) -> int:
        cycle = max(earliest, self._floor)
        used = self._used
        while used.get(cycle, 0) >= self.width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    def prune(self, before: int) -> None:
        """Drop slots below *before*, which callers guarantee no future
        ``reserve`` can reach.  The floor advances on every call — not
        only when the map happens to be large — so the map stays bounded
        and a reserve below the floor can never land on a pruned cycle.
        """
        if before > self._floor:
            self._floor = before
        if len(self._used) > 4096:
            self._used = {c: n for c, n in self._used.items() if c >= before}


class BranchSchedule:
    """Phase A output: the front-end's branch actions for one stream.

    ``codes`` holds one entry per branch event that reaches the
    predictors (the non-SeMPE, non-fenced path): ``0`` = predicted
    correctly, ``1`` = mispredicted (redirect at resolution).  The
    misprediction counters ride along so the per-lane scheduling pass
    (:meth:`OutOfOrderPipeline.run_chunks` with ``schedule=``) never
    recounts them.

    Every input the predictors consume — ``(pc, taken)`` pairs, static
    branch targets, and indirect-jump targets (which are uniform inside
    a lockstep batch group, or the group would have split) — is
    identical across the lanes of a batch group, so one schedule is
    computed per group and shared by every lane's scheduling pass.
    """

    __slots__ = ("codes", "mispredicts", "indirect_mispredicts")

    def __init__(self) -> None:
        self.codes: list[int] = []
        self.mispredicts = 0
        self.indirect_mispredicts = 0


class OutOfOrderPipeline:
    """The timing model.  Feed it a trace with :meth:`run`.

    The chunked path is split into two cooperating phases so a batched
    caller (:mod:`repro.uarch.batch_pipeline`) can share work across
    lockstep lanes:

    * **Phase A** — :meth:`branch_schedule`: the branch-predictor pass
      (TAGE/BTB/ITTAGE/RAS), whose inputs are structure-invariant
      across the lanes of a batch group; run once per group.
    * **Phase B** — :meth:`run_chunks` with ``schedule=``: the per-lane
      scheduling + memory pass (fetch/dispatch/issue/commit cycles and
      the whole cache hierarchy), which consumes Phase A's action codes
      instead of running the predictors.

    ``run_chunks`` without a schedule stays the fused single-pass form,
    and :meth:`run` the per-object oracle — all three are bit-identical
    on the same stream (the parity suites pin this).
    """

    def __init__(self, config: MachineConfig | None = None,
                 sempe: bool = True, fence: bool = False) -> None:
        self.config = config or MachineConfig()
        self.sempe = sempe
        # The fence defense: a SecPrefix'ed branch on the baseline
        # machine serializes the front end instead of predicting (see
        # repro.defenses.builtin.fence).  Mutually exclusive with sempe
        # in practice (the SeMPE machine already never predicts sJMPs).
        self.fence = fence
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.predictor = make_predictor(self.config.predictor)
        self.btb = BranchTargetBuffer()
        self.ittage = Ittage()
        self.ras = ReturnAddressStack()
        self.stats = PipelineStats()
        # LRS-style mechanisms add a per-instruction rename penalty.
        self.rename_overhead = 0.0
        # High-water marks of the internal cycle->slots and
        # store-forwarding maps, sampled at each prune checkpoint; the
        # bounded-memory regression test reads these after long runs.
        self.table_high_water = {"issue": 0, "load": 0, "store": 0}

    # -- main loop ---------------------------------------------------------------

    def run(self, trace: Iterable[TraceRecord]) -> PipelineStats:
        config = self.config
        hierarchy = self.hierarchy
        line_bytes = config.hierarchy.il1.line_bytes

        frontend_depth = config.frontend_depth
        issue_bw = _BandwidthTable(config.issue_width)
        load_bw = _BandwidthTable(config.load_issue_width)

        # Ring buffers for occupancy limits.
        rob_commits = [0] * config.rob_entries
        iq_issues = [0] * config.int_issue_buffer
        lq_commits = [0] * config.load_queue
        sq_commits = [0] * config.store_queue
        rob_head = iq_head = lq_head = sq_head = 0

        reg_ready: dict[int, int] = {}
        store_ready: dict[int, int] = {}   # word address -> data-ready cycle

        fetch_cycle = 0
        fetch_slots = config.fetch_width
        fetch_barrier = 0                  # mispredict redirects block fetch
        dispatch_barrier = 0               # SeMPE drains block rename/dispatch
        current_line = -1
        rename_debt = 0.0
        fence_depth = 0                    # open fenced regions (fence mode)

        last_commit = 0
        commit_in_cycle = 0
        max_commit = 0
        index = 0

        # Speculation window: transient records follow the conditional
        # branch that forked them.  They are *applied* — their fetch and
        # data accesses touch the cache hierarchy (and through it the
        # prefetchers) — exactly when this pipeline's own predictor
        # mispredicted that branch, because the squashed wrong path is
        # then precisely the path the front end ran ahead on.  A
        # correctly-predicted branch never ran the wrong path, so its
        # block is discarded; the squash itself replays fetch from the
        # resolved target (the existing redirect barrier).
        transient_live = False
        transient_line = -1

        for record in trace:
            if record.kind == "transient":
                if transient_live:
                    t: TransientInstr = record
                    t_bytes = t.pc * INSTRUCTION_BYTES
                    t_line = t_bytes // line_bytes
                    if t_line != transient_line:
                        hierarchy.access_instruction(t_bytes)
                        transient_line = t_line
                    if t.mem_addr is not None and (
                            t.opclass is OpClass.LOAD
                            or t.opclass is OpClass.STORE):
                        hierarchy.access_data(t.pc, t.mem_addr, t.is_store)
                        self.stats.transient_accesses += 1
                    self.stats.transient_instructions += 1
                continue
            if record.kind == "drain":
                # Rename/dispatch halts until the ROB drains and the SPM
                # transfer completes.  Fetch and decode continue filling
                # their queues (§IV-F: the drain "is less expensive than
                # a normal branch misprediction because the instructions
                # are still fetched and decoded correctly").
                drain_end = max_commit + record.spm_cycles
                dispatch_barrier = max(dispatch_barrier, drain_end)
                self.stats.drains += 1
                self.stats.spm_cycles += record.spm_cycles
                self.stats.drain_cycles += record.spm_cycles
                continue

            inst: DynInstr = record
            if fence_depth and inst.opclass is OpClass.EOSJMP:
                # Join of a fenced region: speculation re-enabled.
                fence_depth -= 1

            # ---- fetch ----
            if fetch_cycle < fetch_barrier:
                fetch_cycle = fetch_barrier
                fetch_slots = config.fetch_width
                current_line = -1
            if fetch_slots <= 0:
                fetch_cycle += 1
                fetch_slots = config.fetch_width
                if fetch_cycle < fetch_barrier:
                    fetch_cycle = fetch_barrier
            pc_bytes = inst.pc * INSTRUCTION_BYTES
            line = pc_bytes // line_bytes
            if line != current_line:
                access = hierarchy.access_instruction(pc_bytes)
                if not access.l1_hit:
                    fetch_cycle += access.latency
                    fetch_slots = config.fetch_width
                current_line = line
            this_fetch = fetch_cycle
            fetch_slots -= 1

            # LRS rename penalty accumulates fractional debt.
            if self.rename_overhead:
                rename_debt += self.rename_overhead
                if rename_debt >= 1.0:
                    whole = int(rename_debt)
                    rename_debt -= whole
                    fetch_cycle += whole

            # ---- dispatch (subject to ROB / IQ / LSQ occupancy) ----
            dispatch = this_fetch + frontend_depth
            if dispatch < dispatch_barrier:
                dispatch = dispatch_barrier
            dispatch = max(dispatch, rob_commits[rob_head])
            dispatch = max(dispatch, iq_issues[iq_head])
            if inst.opclass is OpClass.LOAD:
                dispatch = max(dispatch, lq_commits[lq_head])
            elif inst.opclass is OpClass.STORE:
                dispatch = max(dispatch, sq_commits[sq_head])

            # ---- operand readiness ----
            ready = dispatch
            for reg in inst.srcs:
                producer = reg_ready.get(reg, 0)
                if producer > ready:
                    ready = producer

            # ---- issue ----
            if inst.opclass is OpClass.LOAD:
                issue = load_bw.reserve(issue_bw.reserve(ready))
            else:
                issue = issue_bw.reserve(ready)

            # ---- execute ----
            latency = config.latency_for(inst.opclass.value)
            if inst.opclass is OpClass.LOAD:
                word = inst.mem_addr & ~7
                forward_from = store_ready.get(word, 0)
                access = hierarchy.access_data(inst.pc, inst.mem_addr, False)
                latency = access.latency
                complete = max(issue + latency, forward_from)
            elif inst.opclass is OpClass.STORE:
                hierarchy.access_data(inst.pc, inst.mem_addr, True)
                complete = issue + latency
                store_ready[inst.mem_addr & ~7] = complete
            else:
                complete = issue + latency

            # ---- branch resolution ----
            if inst.taken is not None:
                self.stats.branches += 1
                transient_live = False
                transient_line = -1
                if inst.secure and self.sempe:
                    # sJMP: the front end always falls through to the NT
                    # path — fetch behaviour must not depend on the
                    # (secret) outcome (§IV-E).  The jump to the T path
                    # happens at the eosJMP, inside a drain.
                    pass
                elif self.fence and (inst.secure or fence_depth > 0):
                    # Fenced region (secret branch through its eosJMP
                    # join): no prediction structure is consulted or
                    # updated — no predictor/BTB/ITTAGE/RAS mutation
                    # that could retain the secret — and control
                    # transfers whose outcome is not decodable in the
                    # front end serialize: later instructions wait for
                    # resolution, fetch restarts with a full refill.
                    if inst.secure:
                        fence_depth += 1
                    if inst.opclass is OpClass.BRANCH or inst.op is Op.JALR:
                        fetch_barrier = max(
                            fetch_barrier,
                            complete + self.config.mispredict_penalty)
                        dispatch_barrier = max(dispatch_barrier, complete)
                    elif inst.taken:
                        # Direct jump: the front end decodes the target
                        # itself; the taken transfer just ends the group.
                        fetch_cycle = max(fetch_cycle, this_fetch) + 1
                        fetch_slots = config.fetch_width
                        current_line = -1
                else:
                    redirect = self._branch_redirect(inst, complete)
                    transient_live = (redirect is not None
                                      and inst.opclass is OpClass.BRANCH)
                    if redirect is not None:
                        fetch_barrier = max(fetch_barrier, redirect)
                    elif inst.taken:
                        # Correctly-predicted taken branch ends the group.
                        fetch_cycle = max(fetch_cycle, this_fetch) + 1
                        fetch_slots = config.fetch_width
                        current_line = -1

            # ---- register writeback ----
            if inst.dst is not None:
                reg_ready[inst.dst] = complete

            # ---- commit (in order, retire_width per cycle) ----
            commit = complete + 1
            if commit < last_commit:
                commit = last_commit
            if commit == last_commit:
                commit_in_cycle += 1
                if commit_in_cycle > config.retire_width:
                    commit += 1
                    commit_in_cycle = 1
            else:
                commit_in_cycle = 1
            last_commit = commit
            if commit > max_commit:
                max_commit = commit

            # ---- occupancy bookkeeping ----
            rob_commits[rob_head] = commit
            rob_head = (rob_head + 1) % config.rob_entries
            iq_issues[iq_head] = issue
            iq_head = (iq_head + 1) % config.int_issue_buffer
            if inst.opclass is OpClass.LOAD:
                lq_commits[lq_head] = commit
                lq_head = (lq_head + 1) % config.load_queue
            elif inst.opclass is OpClass.STORE:
                sq_commits[sq_head] = commit
                sq_head = (sq_head + 1) % config.store_queue

            index += 1
            if index % 8192 == 0:
                high_water = self.table_high_water
                if len(issue_bw) > high_water["issue"]:
                    high_water["issue"] = len(issue_bw)
                if len(load_bw) > high_water["load"]:
                    high_water["load"] = len(load_bw)
                if len(store_ready) > high_water["store"]:
                    high_water["store"] = len(store_ready)
                issue_bw.prune(this_fetch - 64)
                load_bw.prune(this_fetch - 64)
                floor = this_fetch - 512
                if len(store_ready) > 16384:
                    store_ready = {a: c for a, c in store_ready.items()
                                   if c >= floor}
                # Stale producers resolve to the same answer as a miss
                # (any future dispatch is past them), so drop them too
                # rather than letting the map grow with the run length.
                reg_ready = {r: c for r, c in reg_ready.items()
                             if c >= floor}

        self.stats.instructions = index
        self.stats.cycles = max_commit
        self._collect_memory_stats()
        return self.stats

    # -- chunked fast path -------------------------------------------------------

    def run_chunks(self, chunks: Iterable[TraceChunk],
                   schedule: BranchSchedule | None = None) -> PipelineStats:
        """Timing model over a columnar chunk stream (the fast engine).

        Cycle-for-cycle identical to :meth:`run` on the equivalent
        per-object trace — the golden parity suite
        (``tests/core/test_engine_parity.py``) holds the two loops
        together.  The duplication buys the hot loop int comparisons,
        table lookups and hoisted locals instead of Enum/attribute
        traffic; keep any change here in lockstep with :meth:`run`.

        With ``schedule=`` (Phase B of the split pass) the loop consumes
        the precomputed branch action codes instead of running the
        predictors; this pipeline's own predictor structures are left
        untouched, and the schedule's misprediction counters are folded
        into the stats.  The stream must be the one (or, for a batch
        group, structurally identical to the one) the schedule was
        computed from — a code-count mismatch raises rather than
        silently desynchronizing.
        """
        config = self.config
        hierarchy = self.hierarchy
        fetch_latency = hierarchy.fetch_latency
        data_latency = hierarchy.data_latency
        line_bytes = config.hierarchy.il1.line_bytes

        cls_load = OPCLASS_ID[OpClass.LOAD]
        cls_store = OPCLASS_ID[OpClass.STORE]
        cls_branch = OPCLASS_ID[OpClass.BRANCH]
        cls_eosjmp = OPCLASS_ID[OpClass.EOSJMP]
        op_jal = OP_ID[Op.JAL]
        op_jalr = OP_ID[Op.JALR]
        lat_by_cls = tuple(config.latency_for(opclass.value)
                           for opclass in OPCLASSES)

        frontend_depth = config.frontend_depth
        fetch_width = config.fetch_width
        retire_width = config.retire_width
        mispredict_penalty = config.mispredict_penalty
        rob_entries = config.rob_entries
        int_issue_buffer = config.int_issue_buffer
        load_queue = config.load_queue
        store_queue = config.store_queue
        sempe = self.sempe
        fence = self.fence
        rename_overhead = self.rename_overhead

        # Bandwidth tables, inlined (same find-first-available semantics
        # as _BandwidthTable, minus the per-record method calls).
        issue_width = config.issue_width
        load_issue_width = config.load_issue_width
        issue_used: dict[int, int] = {}
        load_used: dict[int, int] = {}
        issue_used_get = issue_used.get
        load_used_get = load_used.get
        issue_floor = load_floor = 0

        predictor = self.predictor
        predict = predictor.predict
        predictor_update = predictor.update
        predictor_record = predictor.record
        btb_update = self.btb.update
        ras = self.ras
        ittage = self.ittage
        codes = schedule.codes if schedule is not None else None
        code_index = 0

        rob_commits = [0] * rob_entries
        iq_issues = [0] * int_issue_buffer
        lq_commits = [0] * load_queue
        sq_commits = [0] * store_queue
        rob_head = iq_head = lq_head = sq_head = 0

        reg_ready = [0] * NUM_REGS
        store_ready: dict[int, int] = {}
        store_ready_get = store_ready.get

        fetch_cycle = 0
        fetch_slots = fetch_width
        fetch_barrier = 0
        dispatch_barrier = 0
        current_line = -1
        rename_debt = 0.0
        fence_depth = 0

        last_commit = 0
        commit_in_cycle = 0
        max_commit = 0
        index = 0

        branches = mispredicts = indirect_mispredicts = 0
        drains = drain_cycles = spm_cycles = 0
        # Speculation window (see run()): a transient block is applied
        # only when this pipeline mispredicted the branch it follows.
        transient_base = TRANSIENT_PC_BASE
        transient_live = False
        transient_line = -1
        transient_insts = transient_accs = 0

        pred = None
        for chunk in chunks:
            if chunk.pred is not pred:
                pred = chunk.pred
                if pred.line_bytes != line_bytes:
                    raise ValueError(
                        f"chunk predecoded for {pred.line_bytes}B icache "
                        f"lines, timing model uses {line_bytes}B"
                    )
                p_cls = pred.cls_id
                p_op = pred.op_id
                p_srcs = pred.srcs
                p_dst = pred.dst
                p_sec = pred.secure
                p_line = pred.line
                p_tgt = pred.target
                p_lat = tuple(lat_by_cls[cls] for cls in p_cls)
            for pc, dyn_addr, tk in zip(chunk.pc, chunk.addr, chunk.taken):
                if pc < 0:
                    if pc <= transient_base:
                        # Squashed wrong-path row (see run()).
                        if transient_live:
                            spc = transient_base - pc
                            t_line = p_line[spc]
                            if t_line != transient_line:
                                fetch_latency(spc * INSTRUCTION_BYTES)
                                transient_line = t_line
                            t_cls = p_cls[spc]
                            if dyn_addr >= 0 and (t_cls == cls_load
                                                  or t_cls == cls_store):
                                data_latency(spc, dyn_addr,
                                             t_cls == cls_store)
                                transient_accs += 1
                            transient_insts += 1
                        continue
                    # Drain: rename/dispatch halts until the ROB drains
                    # and the SPM transfer completes (see run()).
                    drain_end = max_commit + dyn_addr
                    if drain_end > dispatch_barrier:
                        dispatch_barrier = drain_end
                    drains += 1
                    spm_cycles += dyn_addr
                    drain_cycles += dyn_addr
                    continue

                cls = p_cls[pc]
                if fence_depth and cls == cls_eosjmp:
                    # Join of a fenced region (see run()).
                    fence_depth -= 1

                # ---- fetch ----
                if fetch_cycle < fetch_barrier:
                    fetch_cycle = fetch_barrier
                    fetch_slots = fetch_width
                    current_line = -1
                if fetch_slots <= 0:
                    fetch_cycle += 1
                    fetch_slots = fetch_width
                    if fetch_cycle < fetch_barrier:
                        fetch_cycle = fetch_barrier
                line = p_line[pc]
                if line != current_line:
                    miss_latency = fetch_latency(pc * INSTRUCTION_BYTES)
                    if miss_latency:
                        fetch_cycle += miss_latency
                        fetch_slots = fetch_width
                    current_line = line
                this_fetch = fetch_cycle
                fetch_slots -= 1

                if rename_overhead:
                    rename_debt += rename_overhead
                    if rename_debt >= 1.0:
                        whole = int(rename_debt)
                        rename_debt -= whole
                        fetch_cycle += whole

                # ---- dispatch ----
                dispatch = this_fetch + frontend_depth
                if dispatch < dispatch_barrier:
                    dispatch = dispatch_barrier
                if rob_commits[rob_head] > dispatch:
                    dispatch = rob_commits[rob_head]
                if iq_issues[iq_head] > dispatch:
                    dispatch = iq_issues[iq_head]
                if cls == cls_load:
                    if lq_commits[lq_head] > dispatch:
                        dispatch = lq_commits[lq_head]
                elif cls == cls_store:
                    if sq_commits[sq_head] > dispatch:
                        dispatch = sq_commits[sq_head]

                # ---- operand readiness ----
                ready = dispatch
                for reg in p_srcs[pc]:
                    producer = reg_ready[reg]
                    if producer > ready:
                        ready = producer

                # ---- issue + execute ----
                if cls == cls_load:
                    cycle = ready if ready > issue_floor else issue_floor
                    used = issue_used_get(cycle, 0)
                    while used >= issue_width:
                        cycle += 1
                        used = issue_used_get(cycle, 0)
                    issue_used[cycle] = used + 1
                    if cycle < load_floor:
                        cycle = load_floor
                    used = load_used_get(cycle, 0)
                    while used >= load_issue_width:
                        cycle += 1
                        used = load_used_get(cycle, 0)
                    load_used[cycle] = used + 1
                    issue = cycle
                    forward_from = store_ready_get(dyn_addr & ~7, 0)
                    complete = issue + data_latency(pc, dyn_addr, False)
                    if forward_from > complete:
                        complete = forward_from
                else:
                    cycle = ready if ready > issue_floor else issue_floor
                    used = issue_used_get(cycle, 0)
                    while used >= issue_width:
                        cycle += 1
                        used = issue_used_get(cycle, 0)
                    issue_used[cycle] = used + 1
                    issue = cycle
                    if cls == cls_store:
                        data_latency(pc, dyn_addr, True)
                        complete = issue + p_lat[pc]
                        store_ready[dyn_addr & ~7] = complete
                    else:
                        complete = issue + p_lat[pc]

                # ---- branch resolution ----
                if tk >= 0:
                    branches += 1
                    transient_live = False
                    transient_line = -1
                    if p_sec[pc] and sempe:
                        # sJMP: front end always falls through (§IV-E).
                        pass
                    elif fence and (p_sec[pc] or fence_depth > 0):
                        # Fenced region (see run()): no prediction
                        # structure touched, non-decodable transfers
                        # serialize.
                        if p_sec[pc]:
                            fence_depth += 1
                        if cls == cls_branch or p_op[pc] == op_jalr:
                            barrier = complete + mispredict_penalty
                            if barrier > fetch_barrier:
                                fetch_barrier = barrier
                            if complete > dispatch_barrier:
                                dispatch_barrier = complete
                        elif tk:
                            fetch_cycle = max(fetch_cycle, this_fetch) + 1
                            fetch_slots = fetch_width
                            current_line = -1
                    elif codes is not None:
                        # Phase B: the schedule already ran the
                        # predictors for this stream; replay its verdict.
                        if codes[code_index]:
                            barrier = complete + mispredict_penalty
                            if barrier > fetch_barrier:
                                fetch_barrier = barrier
                            if cls == cls_branch:
                                transient_live = True
                        elif tk:
                            fetch_cycle = max(fetch_cycle, this_fetch) + 1
                            fetch_slots = fetch_width
                            current_line = -1
                        code_index += 1
                    else:
                        pc_bytes = pc * INSTRUCTION_BYTES
                        redirect = None
                        if cls == cls_branch:
                            predicted = predict(pc_bytes)
                            taken_b = bool(tk)
                            predictor_update(pc_bytes, taken_b)
                            mispredicted = predictor_record(predicted,
                                                            taken_b)
                            if tk:
                                btb_update(pc_bytes, p_tgt[pc])
                            if mispredicted:
                                mispredicts += 1
                                redirect = complete + mispredict_penalty
                                transient_live = True
                        else:
                            op = p_op[pc]
                            if op == op_jal:
                                if p_dst[pc] >= 0:
                                    ras.push(pc + 1)
                                btb_update(pc_bytes, p_tgt[pc])
                            elif op == op_jalr:
                                target = dyn_addr
                                ras_prediction = ras.pop()
                                ittage_prediction = ittage.predict(pc_bytes)
                                ittage.update(pc_bytes, target)
                                predicted_target = (
                                    ras_prediction
                                    if ras_prediction is not None
                                    else ittage_prediction
                                )
                                if predicted_target != target:
                                    indirect_mispredicts += 1
                                    mispredicts += 1
                                    redirect = complete + mispredict_penalty
                        if redirect is not None:
                            if redirect > fetch_barrier:
                                fetch_barrier = redirect
                        elif tk:
                            fetch_cycle = max(fetch_cycle, this_fetch) + 1
                            fetch_slots = fetch_width
                            current_line = -1

                # ---- register writeback ----
                dst = p_dst[pc]
                if dst >= 0:
                    reg_ready[dst] = complete

                # ---- commit ----
                commit = complete + 1
                if commit < last_commit:
                    commit = last_commit
                if commit == last_commit:
                    commit_in_cycle += 1
                    if commit_in_cycle > retire_width:
                        commit += 1
                        commit_in_cycle = 1
                else:
                    commit_in_cycle = 1
                last_commit = commit
                if commit > max_commit:
                    max_commit = commit

                # ---- occupancy bookkeeping ----
                rob_commits[rob_head] = commit
                rob_head = (rob_head + 1) % rob_entries
                iq_issues[iq_head] = issue
                iq_head = (iq_head + 1) % int_issue_buffer
                if cls == cls_load:
                    lq_commits[lq_head] = commit
                    lq_head = (lq_head + 1) % load_queue
                elif cls == cls_store:
                    sq_commits[sq_head] = commit
                    sq_head = (sq_head + 1) % store_queue

                index += 1
                if index % 8192 == 0:
                    high_water = self.table_high_water
                    if len(issue_used) > high_water["issue"]:
                        high_water["issue"] = len(issue_used)
                    if len(load_used) > high_water["load"]:
                        high_water["load"] = len(load_used)
                    if len(store_ready) > high_water["store"]:
                        high_water["store"] = len(store_ready)
                    floor = this_fetch - 64
                    if floor > issue_floor:
                        issue_floor = floor
                    if floor > load_floor:
                        load_floor = floor
                    if len(issue_used) > 4096:
                        issue_used = {c: n for c, n in issue_used.items()
                                      if c >= floor}
                        issue_used_get = issue_used.get
                    if len(load_used) > 4096:
                        load_used = {c: n for c, n in load_used.items()
                                     if c >= floor}
                        load_used_get = load_used.get
                    if len(store_ready) > 16384:
                        floor = this_fetch - 512
                        store_ready = {a: c for a, c in store_ready.items()
                                       if c >= floor}
                        store_ready_get = store_ready.get

        if schedule is not None:
            if code_index != len(codes):
                raise ValueError(
                    f"branch schedule desynchronized: stream consumed "
                    f"{code_index} of {len(codes)} predictor actions")
            mispredicts += schedule.mispredicts
            indirect_mispredicts += schedule.indirect_mispredicts
        stats = self.stats
        stats.instructions = index
        stats.cycles = max_commit
        stats.branches += branches
        stats.mispredicts += mispredicts
        stats.indirect_mispredicts += indirect_mispredicts
        stats.drains += drains
        stats.drain_cycles += drain_cycles
        stats.spm_cycles += spm_cycles
        stats.transient_instructions += transient_insts
        stats.transient_accesses += transient_accs
        self._collect_memory_stats()
        return stats

    # -- shareable phase (Phase A) -----------------------------------------------

    def branch_schedule(self,
                        chunks: Iterable[TraceChunk]) -> BranchSchedule:
        """Phase A of the split timing pass: the predictor schedule.

        Walks only the branch-relevant rows of a chunk stream through
        this pipeline's front-end predictors and records, per branch
        event the predictors see, whether it mispredicted.  The
        condition structure mirrors the branch-resolution block of
        :meth:`run_chunks` exactly (SeMPE secure branches and fenced
        regions never reach the predictors, so they emit no code) —
        keep the two in lockstep, the scheduled pass consumes exactly
        one code per predictor-visible branch.

        Everything consumed here is identical across the lanes of a
        lockstep batch group: ``(pc, taken)`` pairs (the only per-lane
        ``taken`` values are SeMPE secure-branch outcomes, which this
        path never reads), static targets, and indirect-jump targets
        (per-lane indirect targets split the group in the executor).
        Leaves ``self``'s predictor structures in their post-run state:
        they are the group-shared predictor residue.
        """
        cls_branch = OPCLASS_ID[OpClass.BRANCH]
        cls_eosjmp = OPCLASS_ID[OpClass.EOSJMP]
        op_jal = OP_ID[Op.JAL]
        op_jalr = OP_ID[Op.JALR]
        sempe = self.sempe
        fence = self.fence

        predictor = self.predictor
        predict = predictor.predict
        predictor_update = predictor.update
        predictor_record = predictor.record
        btb_update = self.btb.update
        ras = self.ras
        ittage = self.ittage

        schedule = BranchSchedule()
        append = schedule.codes.append
        mispredicts = indirect_mispredicts = 0
        fence_depth = 0

        pred = None
        for chunk in chunks:
            if chunk.pred is not pred:
                pred = chunk.pred
                p_cls = pred.cls_id
                p_op = pred.op_id
                p_sec = pred.secure
                p_tgt = pred.target
                p_dst = pred.dst
            for pc, dyn_addr, tk in zip(chunk.pc, chunk.addr, chunk.taken):
                if pc < 0:
                    # Drain and transient rows never touch a predictor.
                    continue
                cls = p_cls[pc]
                if fence_depth and cls == cls_eosjmp:
                    fence_depth -= 1
                if tk < 0:
                    continue
                if p_sec[pc] and sempe:
                    # sJMP: never consulted, never trained (§IV-E).
                    continue
                if fence and (p_sec[pc] or fence_depth > 0):
                    # Fenced region: no prediction structure touched.
                    if p_sec[pc]:
                        fence_depth += 1
                    continue
                pc_bytes = pc * INSTRUCTION_BYTES
                if cls == cls_branch:
                    predicted = predict(pc_bytes)
                    taken_b = bool(tk)
                    predictor_update(pc_bytes, taken_b)
                    mispredicted = predictor_record(predicted, taken_b)
                    if tk:
                        btb_update(pc_bytes, p_tgt[pc])
                    if mispredicted:
                        mispredicts += 1
                        append(1)
                    else:
                        append(0)
                else:
                    op = p_op[pc]
                    if op == op_jal:
                        if p_dst[pc] >= 0:
                            ras.push(pc + 1)
                        btb_update(pc_bytes, p_tgt[pc])
                        append(0)
                    elif op == op_jalr:
                        target = dyn_addr
                        ras_prediction = ras.pop()
                        ittage_prediction = ittage.predict(pc_bytes)
                        ittage.update(pc_bytes, target)
                        predicted_target = (
                            ras_prediction
                            if ras_prediction is not None
                            else ittage_prediction
                        )
                        if predicted_target != target:
                            indirect_mispredicts += 1
                            mispredicts += 1
                            append(1)
                        else:
                            append(0)
                    else:
                        # Direct jump: decoded in the front end, never
                        # predicted, never mispredicts.
                        append(0)
        schedule.mispredicts = mispredicts
        schedule.indirect_mispredicts = indirect_mispredicts
        return schedule

    # -- helpers ---------------------------------------------------------------

    def flush_transient_state(self) -> None:
        """Model a secure-region exit flush (the flush-local defense).

        Invalidate every cache level and reset the branch predictors to
        power-on state, so post-run residue probes see a machine that
        does not depend on what the victim did.  Counters (miss rates,
        prediction stats) are left intact — they describe the run that
        already happened.
        """
        self.hierarchy.il1.invalidate_all()
        self.hierarchy.dl1.invalidate_all()
        self.hierarchy.l2.invalidate_all()
        self.predictor = make_predictor(self.config.predictor)
        self.btb = BranchTargetBuffer()
        self.ittage = Ittage()
        self.ras = ReturnAddressStack()

    def _branch_redirect(self, inst: DynInstr, complete: int) -> int | None:
        """Return the cycle fetch may resume after a misprediction, or
        ``None`` if the branch was predicted correctly."""
        config = self.config
        pc_bytes = inst.pc * INSTRUCTION_BYTES

        if inst.secure and self.sempe:
            # sJMP: both paths execute; the front end simply falls through.
            # No predictor lookup, no update, no misprediction (§IV-E).
            return None

        if inst.opclass is OpClass.BRANCH:
            predicted = self.predictor.predict(pc_bytes)
            self.predictor.update(pc_bytes, inst.taken)
            mispredicted = self.predictor.record(predicted, inst.taken)
            if inst.taken:
                self.btb.update(pc_bytes, inst.target)
            if mispredicted:
                self.stats.mispredicts += 1
                return complete + config.mispredict_penalty
            return None

        if inst.op is Op.JAL:
            # Direct call/jump: push the return address for calls.
            if inst.dst is not None:
                self.ras.push(inst.pc + 1)
            self.btb.update(pc_bytes, inst.target)
            return None

        if inst.op is Op.JALR:
            ras_prediction = self.ras.pop()
            ittage_prediction = self.ittage.predict(pc_bytes)
            self.ittage.update(pc_bytes, inst.target)
            predicted_target = (
                ras_prediction if ras_prediction is not None else ittage_prediction
            )
            if predicted_target != inst.target:
                self.stats.indirect_mispredicts += 1
                self.stats.mispredicts += 1
                return complete + config.mispredict_penalty
            return None

        return None

    def _collect_memory_stats(self) -> None:
        stats = self.stats
        hierarchy = self.hierarchy
        stats.il1_accesses = hierarchy.il1.stats.accesses
        stats.il1_misses = hierarchy.il1.stats.misses
        stats.dl1_accesses = hierarchy.dl1.stats.accesses
        stats.dl1_misses = hierarchy.dl1.stats.misses
        stats.l2_accesses = hierarchy.l2.stats.accesses
        stats.l2_misses = hierarchy.l2.stats.misses
