"""Batched timing path: lockstep lane sharing + digest-keyed memoization.

PR 7 vectorized the *functional* half of the engine; this module batches
the *timing* half.  :func:`lane_outcomes` serves every lane of a
:class:`~repro.arch.batch.BatchExecutor` with far fewer pipeline passes
than lanes, exact per lane, through two cooperating mechanisms:

1. **Lockstep lane sharing.**  Lanes are keyed by
   :meth:`~repro.arch.batch.BatchExecutor.lane_timing_digest` — a
   content digest of everything the timing model reads (static tables,
   dynamic ``(pc, addr, taken)`` columns, per-lane address patches).
   Lanes with equal digests feed the pipeline byte-identical input, so
   one pass serves all of them.  SeMPE lanes are lockstep *by
   construction*: their only per-lane trace values are secure-branch
   outcomes, which the pipeline never consults (§IV-E), so a whole
   SeMPE campaign usually collapses to a single digest.  When a batch
   group holds several distinct digests (secret-indexed addresses), the
   predictor pass — whose inputs are group-invariant — still runs once
   per group (:meth:`~repro.uarch.pipeline.OutOfOrderPipeline.branch_schedule`,
   Phase A) and only the per-lane scheduling/memory pass (Phase B)
   repeats per digest.

2. **Digest-keyed memoization.**  Each pass's full
   :class:`PipelineOutcome` (stats, miss rates, residue digests,
   transient digest) is cached under ``(machine-config fingerprint,
   defense fingerprint, machine flags, lane digest)`` in a bounded
   process-wide table, so identical lanes *across* calls — and
   identical cells across a sweep — cost one pass.  Hit/miss counters
   surface through the CLI's ``--cache-stats`` plumbing
   (:func:`memo_info`); :func:`set_memo_enabled` exists so the parity
   suite can prove the cache is semantically transparent.

The serial pipeline (:meth:`OutOfOrderPipeline.run_chunks` without a
schedule) stays the oracle: ``tests/uarch/test_pipeline_batch_parity.py``
pins per-lane bit-identical :class:`~repro.uarch.pipeline.PipelineStats`
under every registered defense, speculation on and off.

Faulted lanes are never timed or memoized: their entry in the returned
list is ``None`` and callers re-raise
:meth:`~repro.arch.batch.BatchExecutor.lane_error` exactly where the
serial generator would have.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.arch.trace import TRANSIENT_PC_BASE
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import BranchSchedule, OutOfOrderPipeline, \
    PipelineStats


@dataclass
class PipelineOutcome:
    """Everything one lane's timing pass produces.

    The full observable surface of a serial per-lane pipeline run —
    stats, miss rates, the attacker-facing residue digests, and the
    wrong-path (transient) digest — so a memo hit can serve
    ``simulate`` and ``collect_observations_batch`` without touching a
    pipeline at all.
    """

    stats: PipelineStats
    miss_rates: dict[str, float] = field(default_factory=dict)
    cache_digest: str = ""
    cache_occupancy: tuple = ()
    predictor_digest: str = ""
    transient_digest: str = ""


def residue_digests(hierarchy, predictor, btb, ittage, ras):
    """Post-run residue channels of one machine: cache digest, per-set
    occupancy, predictor digest.

    Residue channels expose the *attacker-facing* views: identical to
    the ground truth on an undefended machine, narrowed by the cache
    defenses (partitioning hides the reserved ways, randomization
    denies per-set resolution).  Takes the structures explicitly so
    the predictor residue can come from the group-shared Phase-A pass
    while the cache residue stays per lane.
    """
    caches = (hierarchy.il1, hierarchy.dl1, hierarchy.l2)
    cache_state = tuple(
        tuple(sorted(cache.attacker_resident_lines())) for cache in caches)
    cache_digest = hashlib.sha256(repr(cache_state).encode()).hexdigest()
    cache_occupancy = tuple(
        tuple(cache.attacker_occupancy()) for cache in caches)
    predictor_state = (
        predictor.state_digest(),
        btb.state_digest(),
        ittage.state_digest(),
        ras.state_digest(),
    )
    predictor_digest = hashlib.sha256(
        repr(predictor_state).encode()
    ).hexdigest()
    return cache_digest, cache_occupancy, predictor_digest


def scale_chunk_drains(chunks, scale: float):
    """Scale drain-row SPM cycles in a chunk stream (non-ArchRS snapshot
    mechanisms).  Drain rows have ``-3 <= pc < 0`` and carry their SPM
    cycles in the addr column; transient rows sit at ``pc <= -4`` and
    carry memory addresses, so they must never be scaled.  Mutates the
    chunk columns in place — callers must hold per-lane copies (which
    :meth:`BatchExecutor.lane_chunks` always yields).
    """
    for chunk in chunks:
        pc = chunk.pc
        addr = chunk.addr
        for i in range(chunk.n):
            if TRANSIENT_PC_BASE < pc[i] < 0:
                addr[i] = max(1, int(round(addr[i] * scale)))
        yield chunk


def _transient_tee(chunks, transient_hash, line_bytes: int):
    """Tee a chunk stream, hashing its transient rows column-wise —
    byte-identical to :meth:`TraceObserver.observe` on the
    re-materialized records: static pc, then the touched data line for
    rows that carry a memory address."""
    for chunk in chunks:
        for pc, addr in zip(chunk.pc, chunk.addr):
            if pc <= TRANSIENT_PC_BASE:
                transient_hash.update(
                    (TRANSIENT_PC_BASE - pc).to_bytes(8, "little"))
                if addr >= 0:
                    transient_hash.update(
                        (addr // line_bytes).to_bytes(8, "little",
                                                      signed=False))
        yield chunk


# --------------------------------------------------------------------------
# The memo cache
# --------------------------------------------------------------------------

# Entries are small (a few dozen ints and hex digests each); 4096 covers
# a large sweep's worth of distinct (stream, machine) pairs.
MEMO_CAPACITY = 4096

_MEMO: OrderedDict[tuple, PipelineOutcome] = OrderedDict()
_HITS = 0
_MISSES = 0
_SHARED = 0
_memo_enabled = True


def set_memo_enabled(enabled: bool) -> bool:
    """Toggle the cross-call memo (the parity suite's transparency
    switch).  In-call lane sharing is a structural property of the
    batch, not a cache, and stays on.  Returns the previous setting."""
    global _memo_enabled
    previous = _memo_enabled
    _memo_enabled = enabled
    return previous


def clear_memo() -> None:
    """Drop every memoized outcome and reset the counters."""
    global _HITS, _MISSES, _SHARED
    _MEMO.clear()
    _HITS = 0
    _MISSES = 0
    _SHARED = 0


def memo_info() -> dict[str, int]:
    """Hit/miss/share counters for the pipeline memo (``--cache-stats``).

    ``hits`` are lanes served from the cross-call memo, ``misses`` are
    actual pipeline passes, and ``shared`` are lanes served by another
    lane's pass within the same batch (the lockstep-sharing win).
    """
    return {"hits": _HITS, "misses": _MISSES, "shared": _SHARED,
            "entries": len(_MEMO)}


def _memo_get(key: tuple) -> PipelineOutcome | None:
    if not _memo_enabled:
        return None
    outcome = _MEMO.get(key)
    if outcome is not None:
        _MEMO.move_to_end(key)
    return outcome


def _memo_put(key: tuple, outcome: PipelineOutcome) -> None:
    if not _memo_enabled:
        return
    _MEMO[key] = _clone(outcome)
    while len(_MEMO) > MEMO_CAPACITY:
        _MEMO.popitem(last=False)


def _clone(outcome: PipelineOutcome) -> PipelineOutcome:
    """A mutation-isolated copy (stats are mutable dataclasses; the
    digests and occupancy tuples are immutable and safely shared)."""
    return PipelineOutcome(
        stats=dataclasses.replace(outcome.stats),
        miss_rates=dict(outcome.miss_rates),
        cache_digest=outcome.cache_digest,
        cache_occupancy=outcome.cache_occupancy,
        predictor_digest=outcome.predictor_digest,
        transient_digest=outcome.transient_digest,
    )


def _config_key(config: MachineConfig) -> str:
    """Canonical-JSON SHA-256 over every config field (recursively) —
    the same structural-identity notion the harness store uses, local
    so the uarch layer stays import-independent of the harness."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------------------------
# The batched timing path
# --------------------------------------------------------------------------

def lane_outcomes(
    executor,
    config: MachineConfig,
    *,
    sempe: bool,
    fence: bool = False,
    defense_fingerprint: str = "",
    flush_penalty: int = 0,
    drain_scale: float = 1.0,
    rename_overhead: float = 0.0,
) -> list[PipelineOutcome | None]:
    """One :class:`PipelineOutcome` per lane of a finished batch run.

    *executor* is a :class:`~repro.arch.batch.BatchExecutor` whose
    :meth:`run` has completed.  Faulted lanes get ``None`` — callers
    must re-raise :meth:`lane_error` in lane order, exactly where the
    serial chunk generator would have raised.

    ``flush_penalty`` is the flush-on-exit cycle cost (0 disables the
    exit flush); ``drain_scale`` rescales drain-row SPM cycles for
    non-ArchRS snapshot mechanisms; ``rename_overhead`` is the LRS-style
    per-instruction rename penalty.  All three join the machine-config
    and defense fingerprints in the memo key, so outcomes never alias
    across machines that would time the same stream differently.
    """
    global _HITS, _MISSES, _SHARED

    base_key = (
        _config_key(config),
        defense_fingerprint,
        sempe,
        fence,
        flush_penalty,
        drain_scale,
        rename_overhead,
    )
    n_lanes = executor.n_lanes
    outcomes: list[PipelineOutcome | None] = [None] * n_lanes

    # Pass 1: digest every healthy lane; serve memo hits immediately and
    # queue distinct missing digests (with every lane that wants them).
    missing: "OrderedDict[str, list[int]]" = OrderedDict()
    for lane in range(n_lanes):
        if executor.lane_error(lane) is not None:
            continue
        digest = executor.lane_timing_digest(lane)
        cached = _memo_get(base_key + (digest,))
        if cached is not None:
            _HITS += 1
            outcomes[lane] = _clone(cached)
        else:
            missing.setdefault(digest, []).append(lane)

    if not missing:
        return outcomes

    # Pass 2: group the missing digests by lockstep group.  A group
    # with several distinct digests shares one Phase-A predictor pass;
    # a single-digest group (or a delegated speculation lane) runs the
    # fused single pass.
    by_group: "OrderedDict[object, list[str]]" = OrderedDict()
    for digest, lanes in missing.items():
        by_group.setdefault(
            executor.lane_group_ref(lanes[0]), []).append(digest)

    for _group_ref, digests in by_group.items():
        schedule: BranchSchedule | None = None
        phase_a: OutOfOrderPipeline | None = None
        if len(digests) > 1:
            representative = missing[digests[0]][0]
            phase_a = OutOfOrderPipeline(config, sempe=sempe, fence=fence)
            schedule = phase_a.branch_schedule(
                executor.group_template_chunks(representative))
        for digest in digests:
            lanes = missing[digest]
            outcome = _compute_outcome(
                executor, lanes[0], config, sempe=sempe, fence=fence,
                flush_penalty=flush_penalty, drain_scale=drain_scale,
                rename_overhead=rename_overhead,
                schedule=schedule, phase_a=phase_a)
            _MISSES += 1
            _memo_put(base_key + (digest,), outcome)
            outcomes[lanes[0]] = outcome
            for lane in lanes[1:]:
                _SHARED += 1
                outcomes[lane] = _clone(outcome)
    return outcomes


def _compute_outcome(
    executor,
    lane: int,
    config: MachineConfig,
    *,
    sempe: bool,
    fence: bool,
    flush_penalty: int,
    drain_scale: float,
    rename_overhead: float,
    schedule: BranchSchedule | None,
    phase_a: OutOfOrderPipeline | None,
) -> PipelineOutcome:
    """One actual pipeline pass over one lane's stream (Phase B when a
    group schedule is supplied, the fused single pass otherwise)."""
    pipeline = OutOfOrderPipeline(config, sempe=sempe, fence=fence)
    pipeline.rename_overhead = rename_overhead

    stream = executor.lane_chunks(lane)
    if drain_scale != 1.0:
        # lane_chunks yields per-lane column copies, so the in-place
        # drain scaling can never leak into another lane's stream.
        stream = scale_chunk_drains(stream, drain_scale)
    transient_hash = hashlib.sha256()
    if config.speculation.enabled:
        stream = _transient_tee(stream, transient_hash,
                                config.hierarchy.dl1.line_bytes)

    stats = pipeline.run_chunks(stream, schedule)

    if flush_penalty:
        # Constant-cost exit flush: charge it and clear the residue, so
        # the memoized outcome carries the post-flush machine exactly
        # like the serial path.
        stats.cycles += flush_penalty
        pipeline.flush_transient_state()

    # The predictor residue comes from the group-shared Phase-A pass
    # when one ran (this lane's pipeline never touched its predictors);
    # after an exit flush both are power-on fresh, so the per-lane
    # structures are always correct then.
    source = pipeline if (schedule is None or flush_penalty) else phase_a
    cache_digest, cache_occupancy, predictor_digest = residue_digests(
        pipeline.hierarchy, source.predictor, source.btb,
        source.ittage, source.ras)

    return PipelineOutcome(
        stats=stats,
        miss_rates=pipeline.hierarchy.miss_rates(),
        cache_digest=cache_digest,
        cache_occupancy=cache_occupancy,
        predictor_digest=predictor_digest,
        transient_digest=transient_hash.hexdigest(),
    )
