"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile``  — compile a mini-C file and print the assembly listing;
* ``run``      — compile and simulate, printing cycles/IPC/miss rates;
  ``--workload NAME`` runs a registered victim instead of a file;
* ``check``    — noninterference report for a named secret across
  values; ``--workload NAME`` audits a registered victim using its
  declared secret and representative values;
* ``disasm``   — encode a compiled program and show the SeMPE vs legacy
  decode of the same bytes (the backward-compatibility story);
* ``workloads`` — list the victim-workload registry, or show one
  victim's generated source;
* ``defenses`` — list the protection-scheme registry, or show one
  scheme's transform, machine hooks, and config overrides;
* ``attack``   — run a noisy multi-trial statistical attack against a
  registered victim (``attack run --workload W --attacker A``), or
  list the attacker registry (``attack list``);
* ``experiments`` — regenerate a paper table/figure by name;
* ``sweep``    — run the evaluation grid as one batch: fan cells out
  across ``--jobs`` worker processes and persist results in an on-disk
  store (``--store DIR``), so a repeated invocation re-renders every
  table from disk instead of re-simulating.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine import ENGINES, simulate
from repro.isa.encoding import encode_program
from repro.isa.disassembler import disassemble_binary
from repro.lang.compiler import MODES, compile_source


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _print_cache_stats() -> None:
    """Run-cache and store counters (the ``--cache-stats`` flag)."""
    from repro.harness import cache_info, get_store, store_info

    info = cache_info()
    print(f"run cache: hits={info['hits']} misses={info['misses']} "
          f"entries={info['entries']}")
    from repro.uarch.batch_pipeline import memo_info

    memo = memo_info()
    print(f"pipeline memo: hits={memo['hits']} misses={memo['misses']} "
          f"shared={memo['shared']} entries={memo['entries']}")
    store = get_store()
    if store is None:
        print("store: (none)")
    else:
        stats = store_info()
        line = (f"store [{store.root}]: hits={stats['hits']} "
                f"misses={stats['misses']} stores={stats['stores']} "
                f"invalidations={stats['invalidations']} "
                f"entries={len(store)}")
        quarantined = store.failure_count()
        if quarantined:
            line += f" quarantined={quarantined}"
        print(line)


def cmd_compile(args: argparse.Namespace) -> int:
    mode = args.mode or "sempe"
    compiled = compile_source(_read_source(args.file), mode=mode,
                              collapse_ifs=args.collapse_ifs)
    print(f"; mode={mode}  instructions={len(compiled.program)}  "
          f"sJMPs={compiled.program.count_secure_branches()}")
    print(compiled.program.listing())
    return 0


def _parse_params(text: str) -> dict:
    """Parse ``key=value,key=value`` workload parameter overrides."""
    params: dict = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"expected key=value, got {token!r}")
        key, _, raw = token.partition("=")
        if raw.lower() in ("true", "false"):
            value: object = raw.lower() == "true"
        else:
            try:
                value = int(raw, 0)
            except ValueError:
                value = raw
        params[key.strip()] = value
    return params


class _UsageError(Exception):
    """CLI-level misuse: printed to stderr, exit code 2."""


def _resolve_cli_defense(args: argparse.Namespace):
    """The defense a command runs under (``--defense``, with ``--mode``
    kept as the back-compat alias — the legacy mode names are all
    registered defenses)."""
    from repro.defenses import get_defense

    chosen = getattr(args, "defense", None)
    if chosen and getattr(args, "mode", None):
        raise _UsageError("give --defense or the legacy --mode alias, "
                          "not both")
    try:
        return get_defense(chosen or args.mode or "sempe")
    except ValueError as error:
        raise _UsageError(str(error)) from error


def _workload_program(args: argparse.Namespace, compile_mode: str):
    """Compile either the file or the ``--workload`` registry victim."""
    from repro.workloads.registry import get_workload

    if getattr(args, "workload", None):
        if args.file:
            raise _UsageError("give either a source file or --workload, "
                              "not both")
        try:
            spec = get_workload(args.workload)
            overrides = _parse_params(getattr(args, "params", "") or "")
            return spec.compile(
                compile_mode,
                collapse_ifs=getattr(args, "collapse_ifs", False),
                **overrides)
        except ValueError as error:
            # WorkloadError (unknown name/param/mode) and builder
            # parameter validation both surface as usage errors, not
            # tracebacks.
            raise _UsageError(str(error)) from error
    if not args.file:
        raise _UsageError("a source file (or --workload NAME) is required")
    if getattr(args, "params", ""):
        raise _UsageError("--params only applies to --workload runs")
    return compile_source(_read_source(args.file), mode=compile_mode,
                          collapse_ifs=getattr(args, "collapse_ifs", False))


def cmd_run(args: argparse.Namespace) -> int:
    defense = _resolve_cli_defense(args)
    compiled = _workload_program(args, defense.compile_mode)
    # --legacy runs the binary on the unprotected machine regardless of
    # how it was compiled (the backward-compatibility story).
    machine_defense = "plain" if args.legacy else defense.name
    if args.profile_pipeline:
        from repro.uarch.profile import profiled_pipeline

        with profiled_pipeline():
            report = simulate(compiled.program, defense=machine_defense,
                              engine=args.engine)
    else:
        report = simulate(compiled.program, defense=machine_defense,
                          engine=args.engine)
    machine = "SeMPE" if report.sempe else "baseline"
    print(f"defense:       {machine_defense} "
          f"(compiled as {defense.compile_mode})")
    print(f"machine:       {machine}")
    print(f"instructions:  {report.instructions}")
    print(f"cycles:        {report.cycles}")
    print(f"IPC:           {report.ipc:.3f}")
    print(f"secure regions:{report.functional.secure_regions:6d}  "
          f"drains: {report.functional.drains}")
    for level, rate in report.miss_rates.items():
        print(f"{level} miss rate: {rate * 100:6.2f}%")
    if args.globals:
        from repro.arch.executor import Executor

        executor = Executor(compiled.program, sempe=report.sempe)
        executor.run_to_completion()
        for name in args.globals.split(","):
            name = name.strip()
            address = compiled.program.symbols.get(name)
            if address is None:
                print(f"{name}: <no such global>")
            else:
                value = executor.state.memory.load_signed(address)
                print(f"{name} = {value}")
    if args.cache_stats:
        _print_cache_stats()
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.security.leakage import noninterference_report, victim_report

    # --values default is None so an explicit request is distinguishable
    # from "use the defaults" (workloads have their own representative
    # values; files fall back to 0,1,2).
    values = None
    if args.values is not None:
        try:
            values = [int(token, 0) for token in args.values.split(",")]
        except ValueError as error:
            raise _UsageError(f"invalid --values {args.values!r}: "
                              "expected comma-separated integers"
                              ) from error
    defense = _resolve_cli_defense(args)
    if args.workload:
        if args.file:
            raise _UsageError("give either a source file or --workload, "
                              "not both")
        if args.secret:
            raise _UsageError("--secret conflicts with --workload (the "
                              "registered spec declares its own secret); "
                              "drop one of them")
        try:
            overrides = _parse_params(args.params or "")
            report = victim_report(args.workload, defense.name,
                                   engine=args.engine, secret_values=values,
                                   **overrides)
        except ValueError as error:
            raise _UsageError(str(error)) from error
    else:
        if not args.file:
            raise _UsageError("a source file (or --workload NAME) is "
                              "required")
        if args.params:
            raise _UsageError("--params only applies to --workload audits")
        if not args.secret:
            raise _UsageError("--secret is required when checking a "
                              "source file")
        compiled = compile_source(_read_source(args.file),
                                  mode=defense.compile_mode)
        report = noninterference_report(compiled.program, args.secret,
                                        values if values is not None
                                        else [0, 1, 2],
                                        defense=defense.name,
                                        engine=args.engine)
    print(report.summary())
    print()
    print("verdict:", "SECURE (all channels closed)" if report.secure
          else f"LEAKS via {', '.join(report.leaking_channels())}")
    return 0 if report.secure else 1


def cmd_disasm(args: argparse.Namespace) -> int:
    compiled = compile_source(_read_source(args.file),
                              mode=args.mode or "sempe")
    blob = encode_program(compiled.program)
    print(f"; binary size: {len(blob)} bytes")
    print(disassemble_binary(blob, legacy=False))
    print()
    print(disassemble_binary(blob, legacy=True))
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.harness.report import format_table
    from repro.workloads.registry import get_workload, iter_workloads

    if args.action == "show":
        if not args.name:
            raise _UsageError("workloads show requires a workload name")
        try:
            spec = get_workload(args.name)
            overrides = _parse_params(args.params or "")
            source = spec.source(**overrides)
        except ValueError as error:
            raise _UsageError(str(error)) from error
        print(f"// workload {spec.name}: {spec.title}")
        print(f"// secret: {spec.secret}")
        print(f"// declared channels: {', '.join(spec.channels)}")
        # The static analyzer's view of the same victim (unprotected
        # compile at leak parameters) — printed next to the declaration
        # so a drifting channel list is visible straight from the CLI.
        from repro.analysis import analyze_workload

        derived = analyze_workload(
            spec, "plain", **overrides).predicted_channels()
        print(f"// derived channels:  {', '.join(derived) or 'none'}"
              "  (static, plain compile)")
        undeclared = [c for c in derived if c not in spec.channels]
        if undeclared:
            print("// NOTE: statically derived but not declared: "
                  f"{', '.join(undeclared)}")
        print(source.strip())
        return 0

    if args.name or args.params:
        raise _UsageError(
            f"workloads {args.action} takes no further arguments "
            f"(did you mean `workloads show {args.name}`?)")
    headers = ["name", "secret", "modes", "grid",
               "expected baseline leak channels", "description"]
    rows = []
    for spec in iter_workloads():
        row = spec.describe()
        rows.append([
            row["name"],
            row["secret"],
            ",".join(row["modes"]),
            row["grid"],
            ", ".join(row["channels"]),
            row["title"],
        ])
    print(format_table(headers, rows, title="Victim workload registry"))
    print(f"{len(rows)} workloads registered")
    return 0


def cmd_defenses(args: argparse.Namespace) -> int:
    from repro.defenses import get_defense, iter_defenses
    from repro.harness.report import format_table

    if args.action == "show":
        if not args.name:
            raise _UsageError("defenses show requires a defense name")
        try:
            spec = get_defense(args.name)
        except ValueError as error:
            raise _UsageError(str(error)) from error
        print(f"defense {spec.name}: {spec.title}")
        print(f"  description:      {spec.description}")
        print(f"  compile mode:     {spec.compile_mode}")
        print("  machine:          "
              f"{'SeMPE (dual-path)' if spec.sempe_machine else 'baseline'}")
        hooks = [name for name, on in (
            ("fence-at-secret-branches", spec.fence_branches),
            ("flush-on-exit", spec.flush_on_exit)) if on]
        print(f"  machine hooks:    {', '.join(hooks) or 'none'}")
        print(f"  protects:         {', '.join(spec.protects) or 'nothing'}")
        if spec.config_overrides:
            print("  config overrides:")
            for path in sorted(spec.config_overrides):
                print(f"    {path} = {spec.config_overrides[path]}")
        else:
            print("  config overrides: none")
        print(f"  fingerprint:      {spec.fingerprint()}")
        return 0

    if args.name:
        raise _UsageError(
            f"defenses {args.action} takes no further arguments "
            f"(did you mean `defenses show {args.name}`?)")
    headers = ["name", "compile", "machine", "hooks",
               "protected channels", "description"]
    rows = []
    for spec in iter_defenses():
        hooks = [tag for tag, on in (("fence", spec.fence_branches),
                                     ("flush", spec.flush_on_exit)) if on]
        if spec.config_overrides:
            hooks.append(f"{len(spec.config_overrides)} cfg")
        rows.append([
            spec.name,
            spec.compile_mode,
            "sempe" if spec.sempe_machine else "baseline",
            ",".join(hooks) or "-",
            ", ".join(spec.protects) or "-",
            spec.title,
        ])
    print(format_table(headers, rows, title="Protection-scheme registry"))
    print(f"{len(rows)} defenses registered")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    from repro.harness import format_table
    from repro.security.attackers import (
        applicable_attackers,
        get_attacker,
        iter_attackers,
    )
    from repro.workloads.registry import get_workload, workload_names

    if args.action == "list":
        if args.workload or args.attacker:
            raise _UsageError("attack list takes no --workload/--attacker "
                              "(it lists the whole registry)")
        headers = ["name", "channel", "style", "applicable victims",
                   "description"]
        rows = []
        for attacker in iter_attackers():
            victims = [name for name in workload_names()
                       if attacker.applies_to(get_workload(name))]
            rows.append([
                attacker.name,
                attacker.channel,
                "scalar" if attacker.scalar else "categorical",
                ", ".join(victims),
                attacker.description,
            ])
        print(format_table(headers, rows, title="Attacker registry"))
        print(f"{len(rows)} attackers registered")
        return 0

    from repro.harness import ResultStore, run_attack, set_store
    from repro.security.attackers import MIN_TRIALS, AttackSpec

    if not args.workload or not args.attacker:
        raise _UsageError("attack run requires --workload and --attacker "
                          "(see `repro attack list`)")
    if args.trials < MIN_TRIALS:
        raise _UsageError(
            f"--trials {args.trials} is below the statistical floor "
            f"({MIN_TRIALS}); the distinguisher could not reach "
            "significance even on a fully leaking channel")
    try:
        workload = get_workload(args.workload)
        attacker = get_attacker(args.attacker)
        if not attacker.applies_to(workload):
            raise _UsageError(
                f"attacker {attacker.name!r} exploits the "
                f"{attacker.channel!r} channel, which workload "
                f"{workload.name!r} does not declare; applicable: "
                f"{', '.join(applicable_attackers(workload)) or 'none'}")
        overrides = _parse_params(args.params or "")
        workload.leak_resolve(overrides)     # unknown keys fail here
        spec = AttackSpec(workload.name, attacker.name,
                          trials=args.trials, seed=args.seed,
                          jitter=args.jitter, flip=args.flip,
                          params=overrides)
    except _UsageError:
        raise
    except ValueError as error:
        raise _UsageError(str(error)) from error
    if args.store:
        set_store(ResultStore(args.store))
    from repro.security.attackers import expected_verdict

    if args.defense:
        from repro.defenses import get_defense

        try:
            protected = get_defense(args.defense).name
        except ValueError as error:
            raise _UsageError(str(error)) from error
        if args.mode != "both":
            raise _UsageError("give --defense or the legacy --mode "
                              "alias, not both")
        # Attack the baseline and the chosen scheme, like the classic
        # plain-vs-sempe pair.
        modes = ("plain",) if protected == "plain" else ("plain", protected)
    else:
        modes = (("plain", "sempe") if args.mode == "both"
                 else (args.mode,))
    expected = {mode: expected_verdict(attacker, mode) for mode in modes}
    config = None
    if getattr(args, "speculation", False):
        from repro.security.attackers import attack_config

        config = attack_config()
        config.speculation.enabled = True
    ok = True
    verdicts: dict[str, str] = {}
    from repro.defenses import sempe_machine

    for mode in modes:
        report = run_attack(spec, mode, config=config,
                            engine=args.engine).report
        verdicts[mode] = report.verdict
        machine = ("baseline" if mode == "plain"
                   else "SeMPE" if sempe_machine(mode)
                   else f"{mode}-protected")
        print(f"{machine} machine:")
        print(f"  channel:       {report.channel} "
              f"(profiled I={report.profiled_mi:.2f} bits, "
              f"{report.candidates} candidate secrets)")
        print(f"  class pair:    {report.pair[0]} vs {report.pair[1]}")
        print(f"  distinguisher: {report.stat_kind} "
              f"statistic={report.statistic:.3g} "
              f"p={report.p_value:.2e}")
        print(f"  key recovery:  {report.bits_recovered}/"
              f"{report.bits_total} bits "
              f"({report.success_rate:.0%}; {report.reps} probe(s)/bit)")
        want = expected[mode]
        print(f"  verdict:       {report.verdict}"
              + (f" (expected {want})" if want else " (no claim)"))
        ok = ok and (want is None or report.verdict == want)
    if len(modes) == 2:
        shield = "SeMPE" if modes[1] == "sempe" else modes[1]
        # "defeated" only when the protected machine actually held; a
        # scheme that makes no claim for this channel must not be
        # credited with stopping an attack that still succeeded.
        if not ok:
            outcome = "UNEXPECTED (see verdicts above)"
        elif verdicts[modes[1]] == "chance":
            outcome = f"key recovered on baseline, defeated by {shield}"
        else:
            outcome = (f"key recovered on baseline; {shield} makes no "
                       f"claim for the {attacker.channel!r} channel "
                       f"(verdict: {verdicts[modes[1]]})")
        print("attack outcome:", outcome)
    if args.cache_stats:
        _print_cache_stats()
    return 0 if ok else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """The static-vs-dynamic differential gate (``repro verify``).

    Runs every selected workload × defense pair through the static
    analyzer, the defense-transform verifier, and the dynamic
    noninterference experiment; exits nonzero if any pair is unsound
    (a dynamically observed channel the static analysis missed) or
    violates its defense's structural invariants.
    """
    from repro.analysis import VerifySpec
    from repro.defenses import defense_names, get_defense
    from repro.harness import (
        ResultStore, SweepCell, ensure_cells, format_table, run_verify,
        set_store,
    )
    from repro.harness.experiments import _leak_config
    from repro.workloads.registry import get_workload, workload_names

    if args.engine:
        from repro.core.engine import set_default_engine

        set_default_engine(args.engine)
    try:
        workloads = ([get_workload(args.workload).name] if args.workload
                     else list(workload_names()))
        defenses = ([get_defense(args.defense).name] if args.defense
                    else list(defense_names()))
    except ValueError as error:
        raise _UsageError(str(error)) from error
    if args.store:
        set_store(ResultStore(args.store))

    config = _leak_config()
    if getattr(args, "speculation", False):
        config.speculation.enabled = True
    cells = [SweepCell("verify", VerifySpec(workload), defense, config)
             for workload in workloads for defense in defenses]
    stats = ensure_cells("verify", cells, jobs=args.jobs)
    if not stats.ok:
        _print_failure_summary(stats)
        print(stats.summary())
        return 1

    headers = ["victim", "defense", "predicted", "dynamic",
               "static-only", "dynamic-only", "verdict"]
    rows: list[list[object]] = []
    bad = 0
    for workload in workloads:
        for defense in defenses:
            report = run_verify(VerifySpec(workload), defense,
                                config=config).report
            verdict = "ok" if report.ok else (
                "UNSOUND" if not report.sound else "TRANSFORM-VIOLATION")
            if not report.ok:
                bad += 1
            rows.append([
                workload, defense,
                ", ".join(report.predicted) or "none",
                ", ".join(report.dynamic) or "none",
                ", ".join(report.static_only) or "-",
                ", ".join(report.dynamic_only) or "-",
                verdict,
            ])
            if args.sites:
                print(f"-- {workload} [{defense}]: "
                      f"{report.static.summary()}")
                for site in report.static.sites:
                    print(f"     [{site.kind}] {site.op} pc={site.pc:#x} "
                          f"line={site.line} {site.detail}")
            for violation in report.violations:
                print(f"!! {workload} [{defense}] {violation.invariant}: "
                      f"{violation.message}")
            for channel in report.dynamic_only:
                print(f"!! {workload} [{defense}] UNSOUND: channel "
                      f"{channel!r} observed dynamically but not "
                      "statically predicted")
    print(format_table(headers, rows,
                       title="Static-vs-dynamic differential"))
    total = len(workloads) * len(defenses)
    print(f"{total - bad}/{total} pairs ok"
          + (f"; {bad} FAILING" if bad else
             " (static-only channels are the expected "
             "attacker/observer gap)"))
    if args.cache_stats:
        _print_cache_stats()
    return 1 if bad else 0


def cmd_experiments(args: argparse.Namespace) -> int:
    if args.engine:
        from repro.core.engine import set_default_engine

        set_default_engine(args.engine)
    from repro.harness import EXPERIMENTS, format_table, render_experiment

    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    result = render_experiment(args.name, w=args.w,
                               w_sweep=tuple(range(1, args.w + 1)))
    print(format_table(result.headers, result.rows, title=result.experiment))
    if args.cache_stats:
        _print_cache_stats()
    return 0


def _parse_int_csv(text: str) -> tuple[int, ...]:
    return tuple(int(token) for token in text.split(",") if token.strip())


class _SweepProgress:
    """Live cell progress on stderr, with a failed-cell counter."""

    def __init__(self) -> None:
        self.failed = 0

    def __call__(self, done: int, total: int, name: str,
                 ok: bool) -> None:
        if not ok:
            self.failed += 1
        tally = f"{done}/{total}"
        if self.failed:
            tally += f", {self.failed} failed"
        end = "\n" if done == total else ""
        print(f"\r[{tally}] {name:<44}", end=end,
              file=sys.stderr, flush=True)


def _print_failure_summary(stats) -> None:
    """One row per failed cell, plus the quarantine lifecycle hints."""
    from repro.harness import format_table

    rows = []
    for failure in stats.failures:
        resolution = "quarantined" if failure.quarantined else "recorded"
        rows.append([
            failure.name,
            failure.mode,
            failure.failure,
            failure.error_type or "-",
            str(failure.attempts),
            resolution,
        ])
    print(format_table(
        ["cell", "mode", "failure", "error", "attempts", "resolution"],
        rows, title=f"Failed cells ({len(rows)})"))
    if any(failure.quarantined for failure in stats.failures):
        print("quarantined cells are skipped on resume; re-run with "
              "--retry-quarantined to clear them")


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness import (
        EXPERIMENTS, ResultStore, SweepSpec, experiment_cells,
        format_table, render_experiment, run_sweep, set_default_jobs,
        set_store,
    )

    if args.engine:
        from repro.core.engine import set_default_engine

        set_default_engine(args.engine)
    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments {unknown}; "
              f"choose from {list(EXPERIMENTS)}", file=sys.stderr)
        return 2

    # Validate all sizing inputs before touching the store directory.
    from repro.workloads.microbench import WORKLOADS

    w_sweep = tuple(range(1, args.w + 1))
    try:
        sizes = _parse_int_csv(args.sizes)
    except ValueError:
        print(f"invalid --sizes {args.sizes!r}: expected "
              "comma-separated integers", file=sys.stderr)
        return 2
    workloads = tuple(
        token.strip() for token in args.workloads.split(",")
        if token.strip())
    bad = [w for w in workloads if w not in WORKLOADS]
    if bad:
        print(f"unknown workloads {bad}; choose from {list(WORKLOADS)}",
              file=sys.stderr)
        return 2

    # --no-store must actually disable persistence, including a store
    # installed earlier in this process.
    set_store(None if args.no_store else ResultStore(args.store))
    cells = []
    for name in names:
        cells.extend(experiment_cells(
            name, w=args.w, w_sweep=w_sweep, sizes=sizes,
            workloads=workloads))
    spec = SweepSpec("+".join(names), cells)

    from repro.harness.failures import ExecutionPolicy, SweepInterrupted

    fault_plan = None
    if args.chaos is not None:
        if args.timeout is None:
            raise _UsageError("--chaos can inject hangs; give --timeout "
                              "so they are killable")
        from repro.testing.faults import FaultPlan

        fault_plan = FaultPlan.seeded(
            [cell.fingerprint() for cell in spec.cells],
            seed=args.chaos, rate=args.chaos_rate)
        print(f"chaos: injecting {len(fault_plan)} faults across "
              f"{len(spec.cells)} cells (seed {args.chaos})",
              file=sys.stderr)
    if args.timeout is not None and args.timeout <= 0:
        raise _UsageError(f"--timeout must be positive, got {args.timeout}")
    if args.retries < 0:
        raise _UsageError(f"--retries must be >= 0, got {args.retries}")
    if args.max_instructions is not None and args.max_instructions <= 0:
        raise _UsageError("--max-instructions must be positive, got "
                          f"{args.max_instructions}")
    policy = ExecutionPolicy(
        timeout=args.timeout,
        retries=args.retries,
        max_failures=args.max_failures,
        fallback_reference=args.fallback_reference,
        max_instructions=args.max_instructions,
        retry_quarantined=args.retry_quarantined,
        fault_plan=fault_plan,
    )

    set_default_jobs(args.jobs)
    try:
        stats = run_sweep(
            spec, jobs=args.jobs, policy=policy,
            progress=_SweepProgress() if args.progress else None)
    except SweepInterrupted as stop:
        stats = stop.stats
        print(file=sys.stderr)
        print("interrupted — partial results are installed; re-run to "
              "resume from the store", file=sys.stderr)
        if stats is not None:
            if stats.failures:
                _print_failure_summary(stats)
            print(stats.summary())
        return 130

    if stats.ok:
        # All cells are warm: rendering pulls straight from the cache.
        for name in names:
            result = render_experiment(name, w=args.w, w_sweep=w_sweep,
                                       sizes=sizes, workloads=workloads)
            print(format_table(result.headers, result.rows,
                               title=result.experiment))
            print()
    else:
        _print_failure_summary(stats)
        print(f"{stats.failed} cells failed; tables not rendered "
              "(healthy cells are installed in the store)")
    print(stats.summary())
    if args.cache_stats:
        _print_cache_stats()
    if stats.aborted:
        return 3
    return 0 if stats.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SeMPE reproduction toolchain",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub, file_optional=False):
        if file_optional:
            sub.add_argument("file", nargs="?", default=None,
                             help="mini-C source file ('-' for stdin); "
                                  "omit when using --workload")
        else:
            sub.add_argument("file", help="mini-C source file ('-' for stdin)")
        sub.add_argument("--mode", choices=MODES, default=None,
                         help="compiler mode (default sempe); for "
                              "run/check this is the back-compat alias "
                              "of --defense")

    compile_parser = subparsers.add_parser(
        "compile", help="compile and print the assembly listing")
    add_common(compile_parser)
    compile_parser.add_argument("--collapse-ifs", action="store_true",
                                help="apply the nesting-reduction pass")
    compile_parser.set_defaults(func=cmd_compile)

    run_parser = subparsers.add_parser("run", help="compile and simulate")
    add_common(run_parser, file_optional=True)
    run_parser.add_argument("--defense", default=None,
                            help="protection scheme to compile for and "
                                 "run under (see `repro defenses list`; "
                                 "default sempe)")
    run_parser.add_argument("--workload", default=None,
                            help="run a registered victim workload "
                                 "(see `repro workloads list`)")
    run_parser.add_argument("--params", default="",
                            help="workload parameter overrides "
                                 "(key=value[,key=value...])")
    run_parser.add_argument("--legacy", action="store_true",
                            help="run the binary on the non-SeMPE machine")
    run_parser.add_argument("--engine", choices=ENGINES,
                            default=None,
                            help="simulation engine (both are bit-identical;"
                                 " default: fast)")
    run_parser.add_argument("--collapse-ifs", action="store_true")
    run_parser.add_argument("--globals", default="",
                            help="comma-separated globals to print")
    run_parser.add_argument("--profile-pipeline", action="store_true",
                            help="cProfile the run and print a per-phase "
                                 "time breakdown (fetch/memory/schedule)")
    run_parser.add_argument("--cache-stats", action="store_true",
                            help="print run-cache and store counters")
    run_parser.set_defaults(func=cmd_run)

    check_parser = subparsers.add_parser(
        "check", help="noninterference report across secret values")
    add_common(check_parser, file_optional=True)
    check_parser.add_argument("--defense", default=None,
                              help="protection scheme to audit under "
                                   "(see `repro defenses list`; "
                                   "default sempe)")
    check_parser.add_argument("--workload", default=None,
                              help="audit a registered victim workload "
                                   "with its declared secret and values")
    check_parser.add_argument("--params", default="",
                              help="workload parameter overrides "
                                   "(key=value[,key=value...])")
    check_parser.add_argument("--secret", default=None,
                              help="name of the secret global to vary "
                                   "(required for source files)")
    check_parser.add_argument("--values", default=None,
                              help="comma-separated secret values "
                                   "(default: 0,1,2 for files, the "
                                   "declared representative values for "
                                   "--workload)")
    check_parser.add_argument("--engine", choices=ENGINES, default=None,
                              help="functional engine for the observations")
    check_parser.set_defaults(func=cmd_check)

    workloads_parser = subparsers.add_parser(
        "workloads", help="victim-workload registry")
    workloads_parser.add_argument(
        "action", nargs="?", default="list", choices=("list", "show"),
        help="list the registry, or show one victim's generated source")
    workloads_parser.add_argument("name", nargs="?", default=None,
                                  help="workload name (for `show`)")
    workloads_parser.add_argument("--params", default="",
                                  help="parameter overrides for `show`")
    workloads_parser.set_defaults(func=cmd_workloads)

    defenses_parser = subparsers.add_parser(
        "defenses", help="protection-scheme registry")
    defenses_parser.add_argument(
        "action", nargs="?", default="list", choices=("list", "show"),
        help="list the registry, or show one scheme's hooks/overrides")
    defenses_parser.add_argument("name", nargs="?", default=None,
                                 help="defense name (for `show`)")
    defenses_parser.set_defaults(func=cmd_defenses)

    disasm_parser = subparsers.add_parser(
        "disasm", help="show SeMPE vs legacy decode of the same bytes")
    add_common(disasm_parser)
    disasm_parser.set_defaults(func=cmd_disasm)

    attack_parser = subparsers.add_parser(
        "attack",
        help="run a statistical attack, or list the attacker registry")
    attack_parser.add_argument(
        "action", nargs="?", default="run", choices=("run", "list"),
        help="run one attack (default), or list registered attackers")
    attack_parser.add_argument("--workload", default=None,
                               help="victim workload (see `repro "
                                    "workloads list`)")
    attack_parser.add_argument("--attacker", default=None,
                               help="adversary (see `repro attack list`)")
    attack_parser.add_argument("--mode", default="both",
                               choices=("plain", "sempe", "both"),
                               help="attack the baseline, the SeMPE "
                                    "machine, or both (default)")
    attack_parser.add_argument("--defense", default=None,
                               help="attack the baseline and this "
                                    "protection scheme instead of the "
                                    "plain/sempe pair (see `repro "
                                    "defenses list`)")
    attack_parser.add_argument("--trials", type=int, default=32,
                               help="noisy measurements per campaign "
                                    "(default 32)")
    attack_parser.add_argument("--seed", type=int, default=0,
                               help="attack RNG seed (runs are "
                                    "reproducible per seed)")
    attack_parser.add_argument("--jitter", type=float, default=4.0,
                               help="stddev of timing measurement noise "
                                    "in cycles (default 4.0)")
    attack_parser.add_argument("--flip", type=float, default=0.02,
                               help="categorical probe corruption rate "
                                    "(default 0.02)")
    attack_parser.add_argument("--params", default="",
                               help="workload parameter overrides "
                                    "(key=value[,key=value...])")
    attack_parser.add_argument("--engine", choices=ENGINES, default=None,
                               help="functional engine for the victim runs")
    attack_parser.add_argument("--speculation", action="store_true",
                               help="give the victim machine an in-flight "
                                    "speculation window (transient "
                                    "attackers enable it automatically)")
    attack_parser.add_argument("--store", default=None,
                               help="cache attack reports in this result "
                                    "store directory")
    attack_parser.add_argument("--cache-stats", action="store_true",
                               help="print run-cache and store counters")
    attack_parser.set_defaults(func=cmd_attack)

    verify_parser = subparsers.add_parser(
        "verify",
        help="static-vs-dynamic differential over workload × defense")
    verify_parser.add_argument("--workload", default=None,
                               help="verify one victim (default: all "
                                    "registered workloads)")
    verify_parser.add_argument("--defense", default=None,
                               help="verify one scheme (default: all "
                                    "registered defenses)")
    verify_parser.add_argument("--jobs", type=int, default=1,
                               help="worker processes for the dynamic "
                                    "side (results are bit-identical "
                                    "for any value)")
    verify_parser.add_argument("--store", default=None,
                               help="cache verify reports in this "
                                    "result-store directory")
    verify_parser.add_argument("--sites", action="store_true",
                               help="print every classified leak site "
                                    "(pc, source line, kind)")
    verify_parser.add_argument("--engine", choices=ENGINES, default=None,
                               help="functional engine for the dynamic "
                                    "side")
    verify_parser.add_argument("--speculation", action="store_true",
                               help="verify against a machine with an "
                                    "in-flight speculation window (the "
                                    "static side models wrong-path "
                                    "leakage too)")
    verify_parser.add_argument("--cache-stats", action="store_true",
                               help="print run-cache and store counters")
    verify_parser.set_defaults(func=cmd_verify)

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate a paper table/figure")
    experiments_parser.add_argument(
        "name", help="table1|table2|fig8|fig9|fig10a|fig10b|victims|"
                     "leakmatrix|attacks|defensematrix|verify|spectre")
    experiments_parser.add_argument("--w", type=int, default=3,
                                    help="max nesting depth for sweeps")
    experiments_parser.add_argument("--engine", choices=ENGINES,
                                    default=None,
                                    help="simulation engine for the sweep")
    experiments_parser.add_argument("--cache-stats", action="store_true",
                                    help="print run-cache and store "
                                         "counters")
    experiments_parser.set_defaults(func=cmd_experiments)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run the evaluation grid as one parallel, store-backed batch")
    sweep_parser.add_argument(
        "experiments", nargs="*",
        help="experiments to sweep (default: all, including the victim "
             "and attack matrices)")
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes (results are "
                                   "bit-identical for any value)")
    sweep_parser.add_argument("--store", default=".repro-store",
                              help="result-store directory "
                                   "(default: .repro-store)")
    sweep_parser.add_argument("--no-store", action="store_true",
                              help="disable the on-disk store")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="live cell progress on stderr")
    sweep_parser.add_argument("--w", type=int, default=3,
                              help="max nesting depth for sweeps "
                                   "(paper scale: 10)")
    sweep_parser.add_argument("--sizes", default="512,1024,2048,4096",
                              help="comma-separated djpeg pixel counts; "
                                   "the default matches the fig8/fig9 "
                                   "experiment defaults, so a sweep warms "
                                   "the store for `repro experiments`")
    sweep_parser.add_argument("--workloads",
                              default="fibonacci,ones,quicksort,queens",
                              help="comma-separated microbenchmarks")
    sweep_parser.add_argument("--engine", choices=ENGINES, default=None,
                              help="simulation engine for the sweep")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECS",
                              help="per-cell wall-clock deadline; a cell "
                                   "past it is killed and counted as a "
                                   "timeout failure (default: none)")
    sweep_parser.add_argument("--retries", type=int, default=0,
                              help="extra attempts for a failed cell "
                                   "before it is quarantined (default 0; "
                                   "fuel exhaustion never retries)")
    sweep_parser.add_argument("--max-failures", type=int, default=None,
                              metavar="N",
                              help="abort the sweep once more than N "
                                   "cells have permanently failed "
                                   "(default: keep going; exit code 3 "
                                   "on abort)")
    sweep_parser.add_argument("--retry-quarantined", action="store_true",
                              help="clear persisted failure records and "
                                   "re-run the quarantined cells")
    sweep_parser.add_argument("--fallback-reference", action="store_true",
                              help="re-run a permanently failing "
                                   "fast-engine simulation cell on the "
                                   "reference engine (the bit-exact "
                                   "oracle) before quarantining it")
    sweep_parser.add_argument("--max-instructions", type=int, default=None,
                              metavar="N",
                              help="per-cell dynamic-instruction fuel "
                                   "budget; exhaustion is a "
                                   "deterministic, non-retryable cell "
                                   "failure (default: engine backstop "
                                   "of 50M)")
    sweep_parser.add_argument("--chaos", type=int, default=None,
                              metavar="SEED",
                              help="(testing) inject a seeded "
                                   "deterministic fault plan — raising, "
                                   "hanging, and worker-killing cells — "
                                   "to exercise the failure paths; "
                                   "requires --timeout")
    sweep_parser.add_argument("--chaos-rate", type=float, default=0.25,
                              help="(testing) fraction of cells the "
                                   "--chaos plan faults (default 0.25)")
    sweep_parser.add_argument("--cache-stats", action="store_true",
                              help="print run-cache and store counters")
    sweep_parser.set_defaults(func=cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except _UsageError as error:
        print(str(error), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # A Ctrl-C a command didn't handle itself (sweeps print their
        # own partial summary): exit quietly, nonzero, no traceback.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
