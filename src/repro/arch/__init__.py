"""Functional (architectural) simulator.

Executes :class:`repro.isa.program.Program` objects, implementing both the
legacy semantics (secure branches behave like ordinary branches, ``eosJMP``
is a NOP) and the SeMPE semantics (both paths of a secure branch execute,
NT path first, with ArchRS register snapshots in the SPM).  The executor
produces the dynamic instruction trace consumed by the timing model and by
the side-channel observers.
"""

from repro.arch.state import ArchState, to_signed, to_unsigned, MASK64
from repro.arch.trace import DynInstr, DrainEvent, TraceRecord
from repro.arch.executor import (
    Executor,
    ExecutionResult,
    SimulationError,
    InstructionLimitError,
    run_program,
)

__all__ = [
    "ArchState",
    "to_signed",
    "to_unsigned",
    "MASK64",
    "DynInstr",
    "DrainEvent",
    "TraceRecord",
    "Executor",
    "ExecutionResult",
    "SimulationError",
    "InstructionLimitError",
    "run_program",
]
