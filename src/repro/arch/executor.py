"""Functional executor with SeMPE multi-path semantics.

In **legacy mode** (``sempe=False``) the executor models a processor that
does not understand the SecPrefix: secure branches behave like ordinary
branches and ``eosJMP`` is a NOP — exactly one path of every branch runs.

In **SeMPE mode** (``sempe=True``) a secure branch (sJMP):

1. evaluates its condition and pushes a jbTable entry (target address,
   T/NT outcome) — the jbTable itself lives in :mod:`repro.core.jbtable`;
2. saves an ArchRS snapshot of the architectural registers to the SPM and
   drains the pipeline (drain #1, Fig. 6);
3. continues down the **not-taken** path regardless of the outcome;
4. at the first ``eosJMP``, saves the NT-modified registers, restores the
   entry state, drains (drain #2) and jumps back to the taken path;
5. at the second ``eosJMP``, restores registers according to the real
   outcome in constant time, drains (drain #3), pops the jbTable entry
   and falls through.

Memory written inside SecBlocks is *not* snapshotted (matching the paper);
the compiler's ShadowMemory pass privatizes such writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.jbtable import JumpBackTable
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op, OpClass, mem_width
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS
from repro.mem.memory import FlatMemory
from repro.mem.scratchpad import ScratchpadMemory
from repro.arch.state import ArchState, to_signed, to_unsigned
from repro.arch.trace import DynInstr, DrainEvent, TraceRecord, TransientInstr
from repro.uarch.config import SpeculationConfig


class SimulationError(Exception):
    """Raised on runtime errors (bad PC, strict-mode div-by-zero ...)."""


class InstructionLimitError(SimulationError):
    """Raised when the dynamic instruction (fuel) budget is exhausted.

    Fuel exhaustion is deterministic — the same program burns the same
    instructions on either engine — so the harness treats it as a
    non-retryable cell failure.  ``executed`` carries the committed
    instruction count at the abort point (equal on both engines; the
    parity suite checks it).
    """

    def __init__(self, message: str, executed: int | None = None) -> None:
        super().__init__(message)
        self.executed = executed


@dataclass
class ExecutionResult:
    """Summary of one completed run."""

    instructions: int = 0
    secure_branches: int = 0
    secure_regions: int = 0
    max_nesting: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    secure_instructions: int = 0   # committed inside secure regions
    secure_loads: int = 0
    secure_stores: int = 0
    drains: int = 0
    spm_save_cycles: int = 0
    spm_restore_cycles: int = 0
    halted: bool = False
    op_counts: dict[str, int] = field(default_factory=dict)


class _Region:
    """Bookkeeping for one active SecBlock (one jbTable entry)."""

    __slots__ = ("level", "target", "outcome", "phase")

    def __init__(self, level: int, target: int, outcome: bool) -> None:
        self.level = level
        self.target = target
        self.outcome = outcome   # True = branch taken (T path is correct)
        self.phase = "NT"        # currently-executing path


class Executor:
    """Architectural simulator for one program."""

    def __init__(
        self,
        program: Program,
        sempe: bool = True,
        spm: ScratchpadMemory | None = None,
        jbtable: JumpBackTable | None = None,
        max_instructions: int = 50_000_000,
        strict: bool = False,
        speculation: SpeculationConfig | None = None,
        fence: bool = False,
    ) -> None:
        self.program = program
        self.sempe = sempe
        self.spm = spm if spm is not None else ScratchpadMemory(n_arch_regs=NUM_REGS)
        self.jbtable = jbtable if jbtable is not None else JumpBackTable()
        self.max_instructions = max_instructions
        self.strict = strict
        # Transient execution: when the speculation knob is on, every
        # eligible conditional branch forks and emits its squashed
        # wrong-path stream (see _transient_rows).  ``fence`` mirrors
        # the pipeline's fence defense: a SecPrefix'ed branch opens a
        # serialized region (through its eosJMP join) in which the
        # front end never runs ahead, so no wrong path ever executes.
        self.speculation = (speculation
                            if speculation is not None and speculation.enabled
                            else None)
        self.fence_mode = fence
        self._fence_depth = 0
        self._spec_pred = None
        self.state = ArchState(FlatMemory(program.initial_memory()))
        self.state.pc = program.entry
        self.result = ExecutionResult()
        self._regions: list[_Region] = []
        # Parallel to _regions: the modified-register set currently being
        # accumulated for each active region (the NT or T set of its
        # SPM slot, depending on the region's phase).  Register writes
        # touch only the innermost set; a region folds its union into
        # its parent when it exits, which yields the same sets as
        # marking every enclosing region on every write — the parent's
        # phase cannot change while a nested region is open — at O(1)
        # per write instead of O(nesting).
        self._modified_stack: list[set[int]] = []
        self._seq = 0

    # -- public API ------------------------------------------------------------

    def run(self) -> Iterator[TraceRecord]:
        """Execute to completion, yielding the dynamic trace."""
        instructions = self.program.instructions
        n_instructions = len(instructions)
        state = self.state
        while not state.halted:
            if not 0 <= state.pc < n_instructions:
                raise SimulationError(f"PC out of range: {state.pc}")
            if self.result.instructions >= self.max_instructions:
                raise InstructionLimitError(
                    f"exceeded {self.max_instructions} dynamic instructions",
                    executed=self.result.instructions,
                )
            inst = instructions[state.pc]
            yield from self._step(inst)
        self.result.halted = True

    def run_to_completion(self) -> ExecutionResult:
        """Execute, discarding the trace; returns the summary."""
        for _record in self.run():
            pass
        return self.result

    # -- execution core -----------------------------------------------------------

    def _step(self, inst: Instruction) -> Iterator[TraceRecord]:
        state = self.state
        pc = state.pc
        op = inst.op
        self.result.instructions += 1
        self.result.op_counts[op.value] = self.result.op_counts.get(op.value, 0) + 1
        in_region = bool(self._regions)
        if in_region:
            self.result.secure_instructions += 1

        taken: bool | None = None
        target: int | None = None
        mem_addr: int | None = None
        width = 0
        is_store = False
        next_pc = pc + 1
        drains: list[DrainEvent] = []
        transient_rows: list[tuple[int, int, int]] = ()

        opclass = inst.opclass
        if opclass is OpClass.ALU or opclass is OpClass.MUL or opclass is OpClass.DIV:
            self._write_reg(inst.rd, self._alu(inst))
        elif opclass is OpClass.LOAD:
            width = mem_width(op)
            mem_addr = to_unsigned(state.read(inst.rs1) + inst.imm)
            self.result.loads += 1
            if in_region:
                self.result.secure_loads += 1
            value = state.memory.load(mem_addr, width)
            self._write_reg(inst.rd, value)
        elif opclass is OpClass.STORE:
            width = mem_width(op)
            mem_addr = to_unsigned(state.read(inst.rs1) + inst.imm)
            is_store = True
            self.result.stores += 1
            if in_region:
                self.result.secure_stores += 1
            state.memory.store(mem_addr, state.read(inst.rs2), width)
        elif opclass is OpClass.BRANCH:
            taken = self._branch_condition(inst)
            target = inst.target
            self.result.branches += 1
            if inst.secure and self.sempe:
                drains.extend(self._enter_secure_region(inst, taken))
                next_pc = pc + 1           # NT path always first
            else:
                if self.fence_mode and inst.secure:
                    # Fence: the serialized region opens here; nothing
                    # inside it (through the eosJMP join) speculates.
                    self._fence_depth += 1
                elif self.speculation is not None and not inst.secure \
                        and self._fence_depth == 0:
                    transient_rows = self._transient_rows(
                        pc + 1 if taken else target)
                if taken:
                    self.result.taken_branches += 1
                    next_pc = target
        elif opclass is OpClass.JUMP:
            taken = True
            target = inst.target
            self.result.taken_branches += 1
            self.result.branches += 1
            if op is Op.JAL:
                self._write_reg(inst.rd, pc + 1)
            next_pc = target
        elif opclass is OpClass.IJUMP:
            taken = True
            target = state.read(inst.rs1)
            self.result.taken_branches += 1
            self.result.branches += 1
            self._write_reg(inst.rd, pc + 1)
            next_pc = target
        elif opclass is OpClass.CMOV:
            if state.read(inst.rs2) != 0:
                self._write_reg(inst.rd, state.read(inst.rs1))
            else:
                # CMOV always "writes" its destination (with the old value)
                # so its timing/dependence behaviour is condition-independent.
                self._write_reg(inst.rd, state.read(inst.rd))
        elif opclass is OpClass.EOSJMP:
            if self.sempe and self._regions:
                next_pc, eos_drains = self._handle_eosjmp(pc)
                drains.extend(eos_drains)
            elif self._fence_depth:
                # Join of a fenced region: speculation re-enabled
                # (mirrors the pipeline's fence_depth tracking).
                self._fence_depth -= 1
            # else: NOP on legacy processors / outside secure regions.
        elif op is Op.NOP:
            pass
        elif op is Op.HALT:
            state.halted = True
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unimplemented opcode {op}")

        yield DynInstr(
            seq=self._seq,
            pc=pc,
            op=op,
            opclass=opclass,
            srcs=inst.src_regs(),
            dst=inst.dst_reg(),
            mem_addr=mem_addr,
            mem_width=width,
            is_store=is_store,
            taken=taken,
            target=target,
            secure=inst.secure,
        )
        self._seq += 1
        for drain in drains:
            drain.seq = self._seq
            self._seq += 1
            yield drain
        if transient_rows:
            instructions = self.program.instructions
            for t_pc, t_addr, t_taken in transient_rows:
                t_inst = instructions[t_pc]
                t_class = t_inst.opclass
                t_mem = t_class is OpClass.LOAD or t_class is OpClass.STORE
                yield TransientInstr(
                    seq=self._seq,
                    pc=t_pc,
                    op=t_inst.op,
                    opclass=t_class,
                    mem_addr=t_addr if t_addr >= 0 else None,
                    mem_width=mem_width(t_inst.op) if t_mem else 0,
                    is_store=t_class is OpClass.STORE,
                    taken=None if t_taken < 0 else bool(t_taken),
                )
                self._seq += 1

        state.pc = next_pc

    # -- SeMPE region handling -----------------------------------------------------

    def _enter_secure_region(
        self, inst: Instruction, taken: bool
    ) -> list[DrainEvent]:
        level = len(self._regions)
        self.jbtable.push(target=inst.target, taken=taken)
        self.jbtable.set_valid(inst.target)
        save_cycles = self.spm.save_entry_state(level, self.state.snapshot_regs())
        self._regions.append(_Region(level, inst.target, taken))
        self._modified_stack.append(self.spm.slot(level).nt_modified)
        self.result.secure_branches += 1
        self.result.secure_regions += 1
        self.result.max_nesting = max(self.result.max_nesting, level + 1)
        self.result.drains += 1
        self.result.spm_save_cycles += save_cycles
        return [DrainEvent(0, "secblock-entry", save_cycles, level)]

    def _handle_eosjmp(self, pc: int) -> tuple[int, list[DrainEvent]]:
        region = self._regions[-1]
        slot = self.spm.slot(region.level)
        if region.phase == "NT":
            # First eosJMP: save NT results, rewind to entry state, jump back.
            save_cycles = self.spm.save_nt_state(
                region.level, self.state.snapshot_regs(), slot.nt_modified
            )
            restore_cycles = self.spm.entry_save_cycles()  # read entry state back
            self.state.restore_regs(slot.entry_regs)
            self.jbtable.take_jump_back()
            region.phase = "T"
            self._modified_stack[-1] = slot.t_modified
            self.result.drains += 1
            self.result.spm_save_cycles += save_cycles
            self.result.spm_restore_cycles += restore_cycles
            drain = DrainEvent(0, "nt-path-end", save_cycles + restore_cycles,
                               region.level)
            return region.target, [drain]

        # Second eosJMP: constant-time merge, pop the region.
        restore_cycles = self.spm.restore_cycles_for(region.level)
        if region.outcome:
            # Taken path (executed second) is correct: registers already
            # hold the T-path results; SPM values are read but discarded.
            pass
        else:
            # Not-taken path is correct.
            for reg in slot.nt_modified:
                self.state.regs[reg] = slot.nt_regs[reg]
            for reg in slot.t_modified - slot.nt_modified:
                self.state.regs[reg] = slot.entry_regs[reg]
        self.jbtable.pop()
        self.spm.release(region.level)
        self._regions.pop()
        self._modified_stack.pop()
        if self._modified_stack:
            # The parent sees every register the nested region wrote.
            self._modified_stack[-1] |= slot.nt_modified | slot.t_modified
        self.result.drains += 1
        self.result.spm_restore_cycles += restore_cycles
        drain = DrainEvent(0, "secblock-exit", restore_cycles, region.level)
        return pc + 1, [drain]

    # -- helpers ----------------------------------------------------------------

    def _write_reg(self, reg: int | None, value: int) -> None:
        if reg is None or reg == 0:
            return
        self.state.write(reg, value)
        if self._modified_stack:
            self._modified_stack[-1].add(reg)

    def _alu(self, inst: Instruction) -> int:
        read = self.state.read
        op = inst.op
        a = read(inst.rs1) if inst.rs1 is not None else 0
        if inst.imm is not None and inst.rs2 is None:
            b = inst.imm
        else:
            b = read(inst.rs2) if inst.rs2 is not None else 0

        if op in (Op.ADD, Op.ADDI):
            return to_unsigned(a + b)
        if op is Op.SUB:
            return to_unsigned(a - b)
        if op is Op.MUL:
            return to_unsigned(to_signed(a) * to_signed(b))
        if op in (Op.DIV, Op.REM):
            return self._divide(op, a, b)
        if op in (Op.AND, Op.ANDI):
            return to_unsigned(a & b)
        if op in (Op.OR, Op.ORI):
            return to_unsigned(a | b)
        if op in (Op.XOR, Op.XORI):
            return to_unsigned(a ^ b)
        if op in (Op.SLL, Op.SLLI):
            return to_unsigned(a << (b & 63))
        if op in (Op.SRL, Op.SRLI):
            return to_unsigned(a) >> (b & 63)
        if op in (Op.SRA, Op.SRAI):
            return to_unsigned(to_signed(a) >> (b & 63))
        if op in (Op.SLT, Op.SLTI):
            # to_signed masks to 64 bits first, so register operands
            # (already masked) and raw negative immediates compare the
            # same way; no SLT/SLTI split needed.
            return 1 if to_signed(a) < to_signed(b) else 0
        if op is Op.SLTU:
            return 1 if to_unsigned(a) < to_unsigned(b) else 0
        if op is Op.LUI:
            return to_unsigned(inst.imm)
        raise SimulationError(f"not an ALU op: {op}")  # pragma: no cover

    def _divide(self, op: Op, a: int, b: int) -> int:
        """RISC-V-style deterministic division.

        A zero divisor on a wrong path must not crash the machine (§III:
        such exceptions are the programmer's responsibility); we adopt the
        RISC-V convention: x/0 == -1, x%0 == x.  ``strict=True`` raises
        instead, modelling the compiler's reject-at-compile-time option.
        """
        sa, sb = to_signed(a), to_signed(b)
        if sb == 0:
            if self.strict:
                raise SimulationError("division by zero in strict mode")
            return to_unsigned(-1) if op is Op.DIV else to_unsigned(sa)
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        if op is Op.DIV:
            return to_unsigned(quotient)
        return to_unsigned(sa - quotient * sb)

    def _branch_condition(self, inst: Instruction) -> bool:
        a = self.state.read(inst.rs1)
        b = self.state.read(inst.rs2)
        op = inst.op
        if op is Op.BEQ:
            return a == b
        if op is Op.BNE:
            return a != b
        if op is Op.BLT:
            return to_signed(a) < to_signed(b)
        if op is Op.BGE:
            return to_signed(a) >= to_signed(b)
        if op is Op.BLTU:
            return to_unsigned(a) < to_unsigned(b)
        if op is Op.BGEU:
            return to_unsigned(a) >= to_unsigned(b)
        raise SimulationError(f"not a branch: {op}")  # pragma: no cover

    # -- transient execution (the speculation window) ---------------------------

    def _transient_rows(self, wrong_pc: int) -> list[tuple[int, int, int]]:
        """Walk the squashed wrong path from *wrong_pc*.

        Returns ``(static_pc, mem_addr_or_-1, taken_-1/0/1)`` rows — the
        columnar transient encoding — for up to ``speculation.window``
        instructions.  The walk runs on a **forked** register file and a
        store overlay: wrong-path stores never reach architectural
        memory, wrong-path loads see them through the overlay, and a
        wrong-path division by zero is squashed, never raised (transient
        faults do not architecturally trap).  The walk ends at the
        window limit, a PC out of range, HALT, or any secure branch or
        ``eosJMP`` (speculation never crosses a region boundary).

        Shared by the reference and fast engines so the two transient
        streams can never drift apart.
        """
        from repro.isa.program import (
            K_ADD, K_SUB, K_MUL, K_DIV, K_AND, K_OR, K_XOR,
            K_SLL, K_SRL, K_SRA, K_SLT, K_SLTU, K_LUI,
            K_LOAD, K_STORE,
            K_BEQ, K_BNE, K_BLT, K_BLTU, K_BGEU,
            K_JMP, K_JAL, K_JALR, K_CMOV, K_EOSJMP, K_NOP,
            K_LAST_ALU, K_LAST_BRANCH,
        )

        MASK64 = (1 << 64) - 1
        SIGN_BIT = 1 << 63
        TWO64 = 1 << 64

        pred = self._spec_pred
        if pred is None:
            pred = self._spec_pred = self.program.predecode(64)
        kind_t = pred.kind
        rd_t = pred.rd
        rs1_t = pred.rs1
        rs2_t = pred.rs2
        imm_t = pred.imm
        b_imm_t = pred.b_is_imm
        tgt_t = pred.target
        sec_t = pred.secure
        w_t = pred.width
        n_prog = pred.n

        regs = list(self.state.regs)          # forked register file
        mem_load = self.state.memory.load
        overlay: dict[int, int] = {}          # byte addr -> wrong-path byte
        rows: list[tuple[int, int, int]] = []
        pc = wrong_pc
        for _ in range(self.speculation.window):
            if not 0 <= pc < n_prog:
                break
            if sec_t[pc]:
                break                          # never cross an sJMP/fence
            k = kind_t[pc]
            next_pc = pc + 1

            if k <= K_LAST_ALU:
                r1 = rs1_t[pc]
                a = regs[r1] & MASK64 if r1 >= 0 else 0
                if b_imm_t[pc]:
                    b = imm_t[pc]
                else:
                    r2 = rs2_t[pc]
                    b = regs[r2] & MASK64 if r2 >= 0 else 0
                if k == K_ADD:
                    value = a + b
                elif k == K_SUB:
                    value = a - b
                elif k == K_AND:
                    value = a & b
                elif k == K_OR:
                    value = a | b
                elif k == K_XOR:
                    value = a ^ b
                elif k == K_SLL:
                    value = a << (b & 63)
                elif k == K_SRL:
                    value = a >> (b & 63)
                elif k == K_SRA:
                    sa = a - TWO64 if a >= SIGN_BIT else a
                    value = sa >> (b & 63)
                elif k == K_SLT:
                    ub = b & MASK64
                    sa = a - TWO64 if a >= SIGN_BIT else a
                    sb = ub - TWO64 if ub >= SIGN_BIT else ub
                    value = 1 if sa < sb else 0
                elif k == K_SLTU:
                    value = 1 if a < (b & MASK64) else 0
                elif k == K_LUI:
                    value = imm_t[pc]
                elif k == K_MUL:
                    sa = a - TWO64 if a >= SIGN_BIT else a
                    ub = b & MASK64
                    sb = ub - TWO64 if ub >= SIGN_BIT else ub
                    value = sa * sb
                else:  # K_DIV / K_REM: squashed, never strict-raises
                    sa = a - TWO64 if a >= SIGN_BIT else a
                    ub = b & MASK64
                    sb = ub - TWO64 if ub >= SIGN_BIT else ub
                    if sb == 0:
                        value = -1 if k == K_DIV else sa
                    else:
                        quotient = abs(sa) // abs(sb)
                        if (sa < 0) != (sb < 0):
                            quotient = -quotient
                        value = quotient if k == K_DIV else sa - quotient * sb
                d = rd_t[pc]
                if d > 0:
                    regs[d] = value & MASK64
                rows.append((pc, -1, -1))

            elif k == K_LOAD:
                addr = (regs[rs1_t[pc]] + imm_t[pc]) & MASK64
                width = w_t[pc]
                value = 0
                for i in range(width):
                    byte = overlay.get(addr + i)
                    if byte is None:
                        byte = mem_load(addr + i, 1)
                    value |= byte << (8 * i)
                d = rd_t[pc]
                if d > 0:
                    regs[d] = value & MASK64
                rows.append((pc, addr, -1))

            elif k == K_STORE:
                addr = (regs[rs1_t[pc]] + imm_t[pc]) & MASK64
                value = regs[rs2_t[pc]]
                for i in range(w_t[pc]):
                    overlay[addr + i] = (value >> (8 * i)) & 0xFF
                rows.append((pc, addr, -1))

            elif k <= K_LAST_BRANCH:
                a = regs[rs1_t[pc]]
                b = regs[rs2_t[pc]]
                if k == K_BEQ:
                    taken = a == b
                elif k == K_BNE:
                    taken = a != b
                elif k == K_BLTU:
                    taken = (a & MASK64) < (b & MASK64)
                elif k == K_BGEU:
                    taken = (a & MASK64) >= (b & MASK64)
                else:
                    a &= MASK64
                    b &= MASK64
                    sa = a - TWO64 if a >= SIGN_BIT else a
                    sb = b - TWO64 if b >= SIGN_BIT else b
                    taken = sa < sb if k == K_BLT else sa >= sb
                rows.append((pc, -1, 1 if taken else 0))
                if taken:
                    next_pc = tgt_t[pc]

            elif k == K_EOSJMP:
                break                          # region join ends the window

            elif k == K_JMP:
                rows.append((pc, -1, 1))
                next_pc = tgt_t[pc]

            elif k == K_JAL:
                d = rd_t[pc]
                if d > 0:
                    regs[d] = (pc + 1) & MASK64
                rows.append((pc, -1, 1))
                next_pc = tgt_t[pc]

            elif k == K_JALR:
                target = regs[rs1_t[pc]] & MASK64
                d = rd_t[pc]
                if d > 0:
                    regs[d] = (pc + 1) & MASK64
                rows.append((pc, -1, 1))
                next_pc = target

            elif k == K_CMOV:
                d = rd_t[pc]
                value = regs[rs1_t[pc]] if regs[rs2_t[pc]] != 0 \
                    else (regs[d] if d >= 0 else 0)
                if d > 0:
                    regs[d] = value & MASK64
                rows.append((pc, -1, -1))

            elif k == K_NOP:
                rows.append((pc, -1, -1))

            else:  # K_HALT
                rows.append((pc, -1, -1))
                break

            pc = next_pc
        return rows


def run_program(
    program: Program,
    sempe: bool = True,
    max_instructions: int = 50_000_000,
) -> tuple[Executor, ExecutionResult]:
    """Convenience: execute *program* and return (executor, result)."""
    executor = Executor(program, sempe=sempe, max_instructions=max_instructions)
    result = executor.run_to_completion()
    return executor, result
