"""Architectural machine state: registers, PC, and value helpers."""

from __future__ import annotations

from repro.isa.registers import NUM_REGS, SP, GP, ZERO
from repro.isa.program import DATA_BASE, STACK_BASE
from repro.mem.memory import FlatMemory

MASK64 = (1 << 64) - 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Mask to 64 bits."""
    return value & MASK64


class ArchState:
    """Registers + PC + memory for one hardware context."""

    def __init__(self, memory: FlatMemory | None = None) -> None:
        self.regs: list[int] = [0] * NUM_REGS
        self.pc: int = 0
        self.memory = memory if memory is not None else FlatMemory()
        self.halted = False
        # Conventional initialisation.
        self.regs[SP] = STACK_BASE
        self.regs[GP] = DATA_BASE

    # -- register access ---------------------------------------------------

    def read(self, reg: int) -> int:
        if reg == ZERO:
            return 0
        return self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if reg == ZERO:
            return
        self.regs[reg] = value & MASK64

    def snapshot_regs(self) -> list[int]:
        return list(self.regs)

    def restore_regs(self, saved: list[int]) -> None:
        # In place: hot loops hold a direct reference to the register list.
        self.regs[:] = saved
