"""Trial-batched vectorized engine: N lanes of one program per dispatch.

Attack campaigns run the *same predecoded program* hundreds of times,
differing only in the secret bytes poked into memory.  The serial
engines pay the full fetch/decode/execute interpreter cost per trial;
:class:`BatchExecutor` pays it once per *batch step* by keeping the
machine state of all trials ("lanes") as struct-of-arrays columns:

* **registers** — per group, a list of 32 values where each value is
  either a python int (the lanes agree — the overwhelmingly common
  case) or a ``(k,)`` ``uint64`` numpy column (one element per lane);
* **memory** — a global sparse dict of 8-byte words where each word is
  an int (uniform across the whole batch) or an ``(n_lanes,)`` column,
  promoted lazily the first time a store diverges;
* **trace** — shared per-group column lists over the existing
  :class:`~repro.arch.trace.TraceChunk` protocol, with per-lane values
  (secure-branch outcomes, secret-indexed addresses) riding as sparse
  *patch vectors* so one execution produces every lane's byte-identical
  chunk stream.

**Divergence is handled by masked group splitting, never by forking the
step loop**: lanes start in one lockstep group; when a non-secure branch
(or an indirect jump, or a strict-mode divide) resolves differently
across lanes, the group partitions into two groups that continue
independently on the worklist.  Lanes within a group therefore share an
*identical instruction history*, which is what makes the layout sound:
every :class:`~repro.arch.executor.ExecutionResult` counter, SeMPE
modified-register set, drain event and SPM cycle count is group-scalar;
only data values differ per lane.  SeMPE secure branches never split —
all lanes run the NT path then the T path (that is the paper's security
property), carrying the per-lane outcome as a vector for the
constant-time merge at region exit.

Bit-exactness contract: each lane's chunk stream, final registers and
``ExecutionResult`` are byte-identical to running that lane's secrets
through :class:`~repro.arch.fast_executor.FastExecutor` serially; the
batch-parity suite (``tests/core/test_batch_parity.py``) pins this
against both serial engines under every registered defense.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

try:
    import numpy as np
except ImportError:                                  # pragma: no cover
    np = None

from repro.arch.executor import (
    ExecutionResult,
    InstructionLimitError,
    SimulationError,
)
from repro.arch.trace import (
    CHUNK_RECORDS,
    TraceChunk,
    predecode_digest,
    update_stream_digest,
)
from repro.core.jbtable import JbTableError, JumpBackTable
from repro.isa.opcodes import NUM_OPS, OPS
from repro.isa.program import (
    DATA_BASE, STACK_BASE,
    K_ADD, K_SUB, K_MUL, K_DIV, K_AND, K_OR, K_XOR,
    K_SLL, K_SRL, K_SRA, K_SLT, K_SLTU, K_LUI,
    K_LOAD, K_STORE,
    K_BEQ, K_BNE, K_BLT, K_BLTU, K_BGEU,
    K_JMP, K_JAL, K_JALR, K_CMOV, K_EOSJMP, K_NOP,
    K_LAST_ALU, K_LAST_BRANCH,
    Program,
)
from repro.isa.registers import GP, NUM_REGS, SP
from repro.mem.scratchpad import ScratchpadMemory, SPMOverflowError

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63

if np is not None:
    _SIGN64 = np.uint64(SIGN_BIT)
    _U63 = np.uint64(63)
    _U64_0 = np.uint64(0)


def _require_numpy() -> None:
    if np is None:                                   # pragma: no cover
        raise RuntimeError(
            "engine='batch' requires numpy, which is not installed; "
            "use engine='fast' or engine='reference'")


def _vu(x):
    """A value as a numpy-safe operand: python ints premasked so NEP-50
    weak-scalar promotion never sees a negative or >= 2**64 value."""
    return x & MASK64 if isinstance(x, int) else x


def _merge(cond, t_val, nt_val):
    """Per-lane select (uint64 result) with int-or-column operands."""
    if isinstance(t_val, int):
        t_val = np.uint64(t_val & MASK64)
    if isinstance(nt_val, int):
        nt_val = np.uint64(nt_val & MASK64)
    return np.where(cond, t_val, nt_val)


class BatchMemory:
    """Columnar lane-indexed memory: word address -> int | (n,) column.

    An int means every lane of the batch holds that value (the whole
    initial image starts this way); a column is promoted on the first
    store that makes lanes disagree.  Columns are owned by the dict —
    external arrays are copied on insertion, so register columns are
    never aliased into memory.
    """

    def __init__(self, n_lanes: int, image: dict[int, int] | None = None) -> None:
        self.n_lanes = n_lanes
        words: dict[int, int] = {}
        # Assemble the byte image into words exactly like FlatMemory.
        for address, byte in (image or {}).items():
            word_address = address & ~7
            shift = 8 * (address - word_address)
            words[word_address] = (
                (words.get(word_address, 0) & ~(0xFF << shift))
                | ((byte & 0xFF) << shift))
        self._words: dict[int, object] = words

    # -- lane poking (pre-run secret installation) -------------------------

    def poke(self, lane: int, address: int, value: int, width: int = 8) -> None:
        """Store *value* into one lane only (promotes the word)."""
        value &= (1 << (8 * width)) - 1
        if width == 8 and address % 8 == 0:
            self._set_lane_word(address, lane, value)
            return
        for byte_index in range(width):
            byte_address = address + byte_index
            word_address = byte_address & ~7
            shift = 8 * (byte_address - word_address)
            old = self._lane_word(word_address, lane)
            new = (old & ~(0xFF << shift)) | (
                ((value >> (8 * byte_index)) & 0xFF) << shift)
            self._set_lane_word(word_address, lane, new)

    def lane_view(self, lane: int):
        """A FlatMemory-compatible ``store`` shim targeting one lane, so
        :func:`repro.security.observer.poke_secrets` — the single
        secret-encoding point — works unchanged on a batch."""
        return _LaneView(self, lane)

    def _lane_word(self, word_address: int, lane: int) -> int:
        word = self._words.get(word_address, 0)
        return word if isinstance(word, int) else int(word[lane])

    def _set_lane_word(self, word_address: int, lane: int, value: int) -> None:
        word = self._words.get(word_address, 0)
        if isinstance(word, int):
            if value == word:
                return
            column = np.full(self.n_lanes, word & MASK64, dtype=np.uint64)
            column[lane] = value
            self._words[word_address] = column
        else:
            word[lane] = value

    # -- group accessors ----------------------------------------------------

    def _get(self, word_address: int, lanes):
        """The word for a group: int, or a (k,) gather copy."""
        word = self._words.get(word_address, 0)
        if isinstance(word, int):
            return word
        return word[lanes]

    def load_uniform(self, lanes, address: int, width: int):
        """All lanes of the group load the same address."""
        if width == 8 and address % 8 == 0:
            return self._get(address, lanes)
        value = 0
        for byte_index in range(width):
            byte_address = address + byte_index
            word_address = byte_address & ~7
            shift = 8 * (byte_address - word_address)
            word = self._get(word_address, lanes)
            if isinstance(word, int):
                byte = (word >> shift) & 0xFF
            else:
                byte = (word >> np.uint64(shift)) & np.uint64(0xFF)
            if isinstance(byte, int) and isinstance(value, int):
                value |= byte << (8 * byte_index)
            else:
                value = _vu(value) | (_vu(byte) << np.uint64(8 * byte_index))
        return value

    def store_uniform(self, lanes, full: bool, address: int, value,
                      width: int) -> None:
        """All lanes of the group store to the same address.

        *value* is an int (all lanes store the same bits) or a (k,)
        column aligned with *lanes*; *full* says the group covers every
        batch lane (the store may then keep scalar representations).
        """
        if isinstance(value, int):
            value &= (1 << (8 * width)) - 1
        else:
            value = value & np.uint64((1 << (8 * width)) - 1)
        if width == 8 and address % 8 == 0:
            if isinstance(value, int):
                if full:
                    self._words[address] = value
                else:
                    word = self._words.get(address, 0)
                    if isinstance(word, int):
                        if value == word:
                            return
                        column = np.full(self.n_lanes, word & MASK64,
                                         dtype=np.uint64)
                        self._words[address] = column
                    else:
                        column = word
                    column[lanes] = value
            else:
                word = self._words.get(address, 0)
                if full and isinstance(word, int):
                    column = np.empty(self.n_lanes, dtype=np.uint64)
                    column[lanes] = value
                    self._words[address] = column
                elif isinstance(word, int):
                    column = np.full(self.n_lanes, word & MASK64,
                                     dtype=np.uint64)
                    column[lanes] = value
                    self._words[address] = column
                else:
                    word[lanes] = value
            return
        for byte_index in range(width):
            if isinstance(value, int):
                byte = (value >> (8 * byte_index)) & 0xFF
            else:
                byte = (value >> np.uint64(8 * byte_index)) & np.uint64(0xFF)
            byte_address = address + byte_index
            word_address = byte_address & ~7
            shift = 8 * (byte_address - word_address)
            word = self._get(word_address, lanes)
            if isinstance(word, int) and isinstance(byte, int):
                new = (word & ~(0xFF << shift)) | (byte << shift)
            else:
                new = ((_vu(word) & np.uint64(MASK64 ^ (0xFF << shift)))
                       | (_vu(byte) << np.uint64(shift)))
            self.store_uniform(lanes, full, word_address, new, 8)

    def load_lane(self, lane: int, address: int, width: int) -> int:
        """Scalar FlatMemory.load semantics for one lane."""
        if width == 8 and address % 8 == 0:
            return self._lane_word(address, lane)
        value = 0
        for byte_index in range(width):
            byte_address = address + byte_index
            word_address = byte_address & ~7
            shift = 8 * (byte_address - word_address)
            value |= ((self._lane_word(word_address, lane) >> shift) & 0xFF) \
                << (8 * byte_index)
        return value

    def load_scatter(self, lanes, addresses, width: int):
        """Per-lane addresses (the divergent path): python fallback."""
        out = np.empty(len(lanes), dtype=np.uint64)
        for position, (lane, address) in enumerate(
                zip(lanes.tolist(), addresses.tolist())):
            out[position] = self.load_lane(lane, address, width)
        return out

    def store_scatter(self, lanes, addresses, value, width: int) -> None:
        if isinstance(value, int):
            values = [value] * len(lanes)
        else:
            values = value.tolist()
        for lane, address, lane_value in zip(
                lanes.tolist(), addresses.tolist(), values):
            self.poke(lane, address, lane_value, width)


class _LaneView:
    """One lane of a :class:`BatchMemory` through the FlatMemory store
    interface (enough for :func:`poke_secrets`)."""

    __slots__ = ("_memory", "_lane")

    def __init__(self, memory: BatchMemory, lane: int) -> None:
        self._memory = memory
        self._lane = lane

    def store(self, address: int, value: int, width: int = 8) -> None:
        self._memory.poke(self._lane, address, value, width)

    def load(self, address: int, width: int = 8) -> int:
        return self._memory.load_lane(self._lane, address, width)


class _Seg:
    """One group's trace segment: scalar columns + sparse patch vectors.

    Rows shared by every lane of the group are plain ints in the
    ``pc``/``addr``/``taken`` lists; rows whose value differs per lane
    (secure-branch outcomes, divergent memory addresses, indirect-jump
    targets) hold a placeholder and carry their per-lane values in
    ``addr_patch``/``taken_patch`` as ``(absolute_row, column)`` pairs,
    where the column is aligned with ``lanes``.  Group splits freeze the
    segment; both children chain to it through ``parent``, so sibling
    groups share their common prefix instead of copying it.
    """

    __slots__ = ("parent", "lanes", "pc", "addr", "taken",
                 "addr_patch", "taken_patch")

    def __init__(self, parent, lanes) -> None:
        self.parent = parent
        self.lanes = lanes
        self.pc: list[int] = []
        self.addr: list[int] = []
        self.taken: list[int] = []
        self.addr_patch: list[tuple[int, object]] = []
        self.taken_patch: list[tuple[int, object]] = []


class _BatchRegion:
    """One active SecBlock of one group (mirror of Executor._Region plus
    the per-group snapshot storage the serial engine keeps in the SPM).

    ``outcome`` is a python bool when every lane's secure branch agreed,
    else a (k,) bool column — either way all lanes run NT then T and the
    exit merge selects per lane in constant time.
    """

    __slots__ = ("level", "target", "outcome", "phase",
                 "entry_regs", "nt_regs", "t_modified", "nt_modified")

    def __init__(self, level: int, target: int, outcome) -> None:
        self.level = level
        self.target = target
        self.outcome = outcome
        self.phase = "NT"
        self.entry_regs: list | None = None
        self.nt_regs: list | None = None
        self.t_modified: set[int] = set()
        self.nt_modified: set[int] = set()


class _Group:
    """A set of lanes in lockstep (identical instruction history)."""

    __slots__ = (
        "lanes", "full", "regs", "pc", "halted", "error",
        "icount", "secure_icount", "loads", "stores", "branches",
        "taken_branches", "secure_loads", "secure_stores", "op_counts",
        "secure_branches", "secure_regions", "max_nesting", "drains",
        "spm_save_cycles", "spm_restore_cycles",
        "regions", "mstack", "jb",
        "seg", "row_count", "last_flush", "boundaries",
        "_template", "_arrays", "_timing_hasher",
    )

    def __init__(self) -> None:
        self._template = None
        self._arrays = None
        self._timing_hasher = None

    @classmethod
    def root(cls, n_lanes: int, entry: int, jb_depth: int) -> "_Group":
        g = cls()
        g.lanes = np.arange(n_lanes, dtype=np.int64)
        g.full = True
        g.regs = [0] * NUM_REGS
        g.regs[SP] = STACK_BASE
        g.regs[GP] = DATA_BASE
        g.pc = entry
        g.halted = False
        g.error = None
        g.icount = g.secure_icount = 0
        g.loads = g.stores = g.branches = g.taken_branches = 0
        g.secure_loads = g.secure_stores = 0
        g.op_counts = [0] * NUM_OPS
        g.secure_branches = g.secure_regions = g.max_nesting = g.drains = 0
        g.spm_save_cycles = g.spm_restore_cycles = 0
        g.regions = []
        g.mstack = []
        g.jb = JumpBackTable(depth=jb_depth)
        g.seg = _Seg(None, g.lanes)
        g.row_count = 0
        g.last_flush = 0
        g.boundaries = []
        return g

    def split(self, positions) -> "_Group":
        """A child carrying the lane subset at *positions* (a bool mask
        over this group's lane positions); shares the frozen trace."""
        child = _Group()
        child.lanes = self.lanes[positions]
        child.full = False
        child.regs = [value if isinstance(value, int) else value[positions]
                      for value in self.regs]
        child.pc = self.pc
        child.halted = False
        child.error = None
        for name in ("icount", "secure_icount", "loads", "stores",
                     "branches", "taken_branches", "secure_loads",
                     "secure_stores", "secure_branches", "secure_regions",
                     "max_nesting", "drains", "spm_save_cycles",
                     "spm_restore_cycles", "row_count", "last_flush"):
            setattr(child, name, getattr(self, name))
        child.op_counts = list(self.op_counts)
        child.boundaries = list(self.boundaries)
        child.regions = []
        child.mstack = []
        for region in self.regions:
            clone = _BatchRegion(region.level, region.target,
                                 region.outcome[positions]
                                 if not isinstance(region.outcome, bool)
                                 else region.outcome)
            clone.phase = region.phase
            if region.entry_regs is not None:
                clone.entry_regs = [
                    value if isinstance(value, int) else value[positions]
                    for value in region.entry_regs]
            if region.nt_regs is not None:
                clone.nt_regs = [
                    value if isinstance(value, int) else value[positions]
                    for value in region.nt_regs]
            clone.t_modified = set(region.t_modified)
            clone.nt_modified = set(region.nt_modified)
            child.regions.append(clone)
            child.mstack.append(clone.nt_modified if clone.phase == "NT"
                                else clone.t_modified)
        child.jb = JumpBackTable(depth=self.jb.depth)
        for entry in self.jb._entries:
            pushed = child.jb.push(target=entry.target, taken=entry.taken)
            pushed.valid = entry.valid
            pushed.jump_back = entry.jump_back
        child.seg = _Seg(self.seg, child.lanes)
        return child


class BatchExecutor:
    """Run ``n_lanes`` trials of one program in lockstep; see module doc.

    The constructor mirrors :class:`~repro.arch.executor.Executor`
    (``spm``/``jbtable`` act as geometry prototypes for the SPM cycle
    accounting and jbTable depth).  Usage::

        executor = BatchExecutor(program, sempe=True, n_lanes=64)
        for lane, secrets in enumerate(secret_sets):
            poke_secrets(executor.memory.lane_view(lane), symbols, secrets)
        executor.run(line_bytes=64)
        chunks = executor.lane_chunks(0)      # bit-identical to FastExecutor

    ``run`` never raises for per-lane failures: a group that faults
    (bad PC, fuel exhaustion, strict divide-by-zero, SPM overflow)
    records the exception for its lanes and drops out of the worklist;
    :meth:`lane_error` reports it and callers re-raise where the serial
    engine would have.
    """

    def __init__(
        self,
        program: Program,
        sempe: bool = True,
        n_lanes: int = 1,
        spm: ScratchpadMemory | None = None,
        jbtable: JumpBackTable | None = None,
        max_instructions: int = 50_000_000,
        strict: bool = False,
        speculation=None,
        fence: bool = False,
    ) -> None:
        _require_numpy()
        if n_lanes < 1:
            raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
        self.program = program
        self.sempe = sempe
        self.n_lanes = n_lanes
        self.max_instructions = max_instructions
        self.strict = strict
        # Transient execution: wrong-path walks are inherently
        # lane-divergent (forked register values steer per-lane
        # addresses *and* per-lane path shapes), which the shared
        # group columns cannot represent.  With the speculation knob
        # on, lanes therefore run the serial fast engine behind the
        # unchanged batch API (see _run_delegated) — bit-identical
        # per-lane chunks, results, and streams, minus the lockstep
        # speedup.  Off (the default), nothing here changes.
        self.speculation = (speculation
                            if speculation is not None and speculation.enabled
                            else None)
        self.fence_mode = fence
        self._delegates: list | None = None
        proto = spm if spm is not None else ScratchpadMemory(
            n_arch_regs=NUM_REGS)
        self._spm_slots = proto.n_slots
        self._spm_reg_bytes = proto.reg_bytes
        self._spm_bitvec = proto.bitvector_bytes
        self._spm_bpc = proto.bytes_per_cycle
        self._spm_entry_cycles = proto.entry_save_cycles()
        self._jb_depth = (jbtable.depth if jbtable is not None
                          else JumpBackTable().depth)
        self.memory = BatchMemory(n_lanes, program.initial_memory())
        self._pred = None
        self._pred_digest = None
        self._ijump_kind = None
        self._groups: list[_Group] = []
        self._lane_group: dict[int, _Group] = {}
        self._ran = False

    # -- execution ---------------------------------------------------------

    def _spm_cycles(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self._spm_bpc))

    def run(self, line_bytes: int = 64) -> None:
        """Execute every lane to halt or fault (single-use)."""
        if self._ran:
            raise RuntimeError("BatchExecutor.run is single-use")
        self._ran = True
        self._pred = self.program.predecode(line_bytes)
        if self.speculation is not None:
            self._run_delegated(line_bytes)
            return
        work = [_Group.root(self.n_lanes, self.program.entry,
                            self._jb_depth)]
        while work:
            self._execute(work.pop(), work)
        for group in self._groups:
            for lane in group.lanes.tolist():
                self._lane_group[lane] = group

    def _run_delegated(self, line_bytes: int) -> None:
        """Speculation mode: one serial fast engine per lane.

        Each lane gets a fresh :class:`FastExecutor` seeded with this
        batch's per-lane memory image (initial image + lane pokes), so
        per-lane chunks, results, and faults are byte-identical to the
        serial run the parity contract promises.
        """
        from repro.arch.executor import SimulationError
        from repro.arch.fast_executor import FastExecutor

        words = self.memory._words
        self._delegates = []
        for lane in range(self.n_lanes):
            executor = FastExecutor(
                self.program,
                sempe=self.sempe,
                spm=ScratchpadMemory(
                    n_slots=self._spm_slots,
                    n_arch_regs=NUM_REGS,
                    bytes_per_cycle=self._spm_bpc,
                    reg_bytes=self._spm_reg_bytes,
                ),
                jbtable=JumpBackTable(depth=self._jb_depth),
                max_instructions=self.max_instructions,
                strict=self.strict,
                speculation=self.speculation,
                fence=self.fence_mode,
            )
            store = executor.state.memory.store
            for word_address, word in words.items():
                value = word if isinstance(word, int) else int(word[lane])
                store(word_address, value, 8)
            chunks: list[TraceChunk] = []
            error: Exception | None = None
            try:
                for chunk in executor.run_chunks(line_bytes=line_bytes):
                    chunks.append(chunk)
            except SimulationError as exc:
                error = exc
            self._delegates.append((executor, chunks, error))

    def _execute(self, g: _Group, work: list) -> None:
        """Step one group until halt, fault, or divergence split."""
        pred = self._pred
        kind_t = pred.kind
        opid_t = pred.op_id
        rd_t = pred.rd
        rs1_t = pred.rs1
        rs2_t = pred.rs2
        imm_t = pred.imm
        b_imm_t = pred.b_is_imm
        tgt_t = pred.target
        sec_t = pred.secure
        w_t = pred.width
        n_prog = pred.n

        mem = self.memory
        sempe = self.sempe
        strict = self.strict
        max_instructions = self.max_instructions
        spm_slots = self._spm_slots
        reg_bytes = self._spm_reg_bytes
        bitvec_bytes = self._spm_bitvec
        entry_cycles = self._spm_entry_cycles
        spm_cyc = self._spm_cycles

        lanes = g.lanes
        k = len(lanes)
        full = g.full
        regs = g.regs
        regions = g.regions
        mstack = g.mstack
        jb = g.jb
        seg = g.seg
        ap, aa, at = seg.pc.append, seg.addr.append, seg.taken.append
        apatch = seg.addr_patch.append
        tpatch = seg.taken_patch.append

        icount = g.icount
        secure_icount = g.secure_icount
        loads = g.loads
        stores = g.stores
        branches = g.branches
        taken_branches = g.taken_branches
        secure_loads = g.secure_loads
        secure_stores = g.secure_stores
        op_counts = g.op_counts
        row_count = g.row_count
        last_flush = g.last_flush
        boundaries = g.boundaries

        pc = g.pc
        split_mask = None
        try:
            while True:
                if not 0 <= pc < n_prog:
                    raise SimulationError(f"PC out of range: {pc}")
                if icount >= max_instructions:
                    raise InstructionLimitError(
                        f"exceeded {max_instructions} dynamic instructions",
                        executed=icount,
                    )
                kop = kind_t[pc]
                icount += 1
                op_counts[opid_t[pc]] += 1
                if regions:
                    secure_icount += 1
                next_pc = pc + 1

                if kop <= K_LAST_ALU:
                    r1 = rs1_t[pc]
                    a = regs[r1] if r1 >= 0 else 0
                    if b_imm_t[pc]:
                        b = imm_t[pc]
                    else:
                        r2 = rs2_t[pc]
                        b = regs[r2] if r2 >= 0 else 0
                    if isinstance(a, int) and isinstance(b, int):
                        # Scalar fast path: all lanes agree — identical
                        # to the serial fast engine, one op for k lanes.
                        if kop == K_ADD:
                            value = a + b
                        elif kop == K_SUB:
                            value = a - b
                        elif kop == K_AND:
                            value = a & b
                        elif kop == K_OR:
                            value = a | b
                        elif kop == K_XOR:
                            value = a ^ b
                        elif kop == K_SLL:
                            value = a << (b & 63)
                        elif kop == K_SRL:
                            value = a >> (b & 63)
                        elif kop == K_SRA:
                            sa = a - (1 << 64) if a >= SIGN_BIT else a
                            value = sa >> (b & 63)
                        elif kop == K_SLT:
                            ub = b & MASK64
                            sa = a - (1 << 64) if a >= SIGN_BIT else a
                            sb = ub - (1 << 64) if ub >= SIGN_BIT else ub
                            value = 1 if sa < sb else 0
                        elif kop == K_SLTU:
                            value = 1 if a < (b & MASK64) else 0
                        elif kop == K_LUI:
                            value = imm_t[pc]
                        elif kop == K_MUL:
                            sa = a - (1 << 64) if a >= SIGN_BIT else a
                            ub = b & MASK64
                            sb = ub - (1 << 64) if ub >= SIGN_BIT else ub
                            value = sa * sb
                        else:    # K_DIV / K_REM
                            sa = a - (1 << 64) if a >= SIGN_BIT else a
                            ub = b & MASK64
                            sb = ub - (1 << 64) if ub >= SIGN_BIT else ub
                            if sb == 0:
                                if strict:
                                    raise SimulationError(
                                        "division by zero in strict mode")
                                value = -1 if kop == K_DIV else sa
                            else:
                                quotient = abs(sa) // abs(sb)
                                if (sa < 0) != (sb < 0):
                                    quotient = -quotient
                                value = quotient if kop == K_DIV \
                                    else sa - quotient * sb
                        value &= MASK64
                    else:
                        # Vector path: uint64 columns wrap like the
                        # serial engine's mask-at-write.
                        if kop == K_ADD:
                            value = _vu(a) + _vu(b)
                        elif kop == K_SUB:
                            value = _vu(a) - _vu(b)
                        elif kop == K_AND:
                            value = _vu(a) & _vu(b)
                        elif kop == K_OR:
                            value = _vu(a) | _vu(b)
                        elif kop == K_XOR:
                            value = _vu(a) ^ _vu(b)
                        elif kop == K_SLL:
                            sh = (b & 63) if isinstance(b, int) else (b & _U63)
                            value = _vu(a) << sh
                        elif kop == K_SRL:
                            sh = (b & 63) if isinstance(b, int) else (b & _U63)
                            value = _vu(a) >> sh
                        elif kop == K_SRA:
                            av = a if not isinstance(a, int) \
                                else np.full(k, a & MASK64, dtype=np.uint64)
                            if isinstance(b, int):
                                sh = np.full(k, b & 63, dtype=np.int64)
                            else:
                                sh = (b & _U63).astype(np.int64)
                            value = (av.view(np.int64) >> sh).view(np.uint64)
                        elif kop == K_SLT:
                            # Signed compare == unsigned compare with the
                            # sign bit flipped.
                            value = ((_vu(a) ^ _SIGN64) < (_vu(b) ^ _SIGN64)) \
                                .astype(np.uint64)
                        elif kop == K_SLTU:
                            value = (_vu(a) < _vu(b)).astype(np.uint64)
                        elif kop == K_MUL:
                            # Low 64 bits of the product are sign-agnostic.
                            value = _vu(a) * _vu(b)
                        else:    # K_DIV / K_REM
                            au = a if not isinstance(a, int) \
                                else np.full(k, a & MASK64, dtype=np.uint64)
                            bu = b if not isinstance(b, int) \
                                else np.full(k, b & MASK64, dtype=np.uint64)
                            b_zero = bu == _U64_0
                            any_zero = bool(b_zero.any())
                            if strict and any_zero:
                                if bool(b_zero.all()):
                                    raise SimulationError(
                                        "division by zero in strict mode")
                                # Mixed: the zero-divisor lanes fault,
                                # the rest continue — a divergence.
                                icount -= 1
                                op_counts[opid_t[pc]] -= 1
                                if regions:
                                    secure_icount -= 1
                                split_mask = ~b_zero
                                break
                            neg_a = au >= _SIGN64
                            neg_b = bu >= _SIGN64
                            abs_a = np.where(neg_a, _U64_0 - au, au)
                            abs_b = np.where(neg_b, _U64_0 - bu, bu)
                            safe_b = np.where(b_zero, np.uint64(1), abs_b)
                            quotient = abs_a // safe_b
                            quotient = np.where(neg_a ^ neg_b,
                                                _U64_0 - quotient, quotient)
                            if kop == K_DIV:
                                value = np.where(b_zero, np.uint64(MASK64),
                                                 quotient)
                            else:
                                remainder = au - quotient * bu
                                value = np.where(b_zero, au, remainder)
                    d = rd_t[pc]
                    if d > 0:
                        regs[d] = value
                        if mstack:
                            mstack[-1].add(d)
                    ap(pc); aa(-1); at(-1)
                    row_count += 1

                elif kop == K_LOAD:
                    a = regs[rs1_t[pc]]
                    loads += 1
                    if regions:
                        secure_loads += 1
                    width = w_t[pc]
                    if isinstance(a, int):
                        addr = (a + imm_t[pc]) & MASK64
                        value = mem.load_uniform(lanes, addr, width)
                        ap(pc); aa(addr); at(-1)
                    else:
                        addr_vec = a + (imm_t[pc] & MASK64)
                        value = mem.load_scatter(lanes, addr_vec, width)
                        ap(pc); aa(0); at(-1)
                        apatch((row_count, addr_vec))
                    row_count += 1
                    d = rd_t[pc]
                    if d > 0:
                        regs[d] = value & MASK64 if isinstance(value, int) \
                            else value
                        if mstack:
                            mstack[-1].add(d)

                elif kop == K_STORE:
                    a = regs[rs1_t[pc]]
                    value = regs[rs2_t[pc]]
                    stores += 1
                    if regions:
                        secure_stores += 1
                    width = w_t[pc]
                    if isinstance(a, int):
                        addr = (a + imm_t[pc]) & MASK64
                        mem.store_uniform(lanes, full, addr, value, width)
                        ap(pc); aa(addr); at(-1)
                    else:
                        addr_vec = a + (imm_t[pc] & MASK64)
                        mem.store_scatter(lanes, addr_vec, value, width)
                        ap(pc); aa(0); at(-1)
                        apatch((row_count, addr_vec))
                    row_count += 1

                elif kop <= K_LAST_BRANCH:
                    a = regs[rs1_t[pc]]
                    b = regs[rs2_t[pc]]
                    if isinstance(a, int) and isinstance(b, int):
                        if kop == K_BEQ:
                            taken = a == b
                        elif kop == K_BNE:
                            taken = a != b
                        elif kop == K_BLTU:
                            taken = a < b
                        elif kop == K_BGEU:
                            taken = a >= b
                        else:
                            sa = a - (1 << 64) if a >= SIGN_BIT else a
                            sb = b - (1 << 64) if b >= SIGN_BIT else b
                            taken = sa < sb if kop == K_BLT else sa >= sb
                    else:
                        if kop == K_BEQ:
                            cond = _vu(a) == _vu(b)
                        elif kop == K_BNE:
                            cond = _vu(a) != _vu(b)
                        elif kop == K_BLTU:
                            cond = _vu(a) < _vu(b)
                        elif kop == K_BGEU:
                            cond = _vu(a) >= _vu(b)
                        else:
                            xa = _vu(a) ^ _SIGN64
                            xb = _vu(b) ^ _SIGN64
                            cond = xa < xb if kop == K_BLT else xa >= xb
                        t = int(cond.sum())
                        if t == 0:
                            taken = False
                        elif t == k:
                            taken = True
                        else:
                            taken = cond
                    secure = sec_t[pc] and sempe
                    if not isinstance(taken, bool) and not secure:
                        # Divergent ordinary branch: partition, no side
                        # effects kept from this half-step.
                        icount -= 1
                        op_counts[opid_t[pc]] -= 1
                        if regions:
                            secure_icount -= 1
                        split_mask = taken
                        break
                    branches += 1
                    ap(pc); aa(-1)
                    if isinstance(taken, bool):
                        at(1 if taken else 0)
                    else:
                        at(0)
                        tpatch((row_count, taken.astype(np.uint64)))
                    row_count += 1
                    if secure:
                        # sJMP: jbTable push, ArchRS snapshot, drain #1 —
                        # mirrors Executor._enter_secure_region, with
                        # the snapshot held per group.
                        level = len(regions)
                        jb.push(target=tgt_t[pc],
                                taken=taken if isinstance(taken, bool)
                                else True)
                        jb.set_valid(tgt_t[pc])
                        if level >= spm_slots:
                            raise SPMOverflowError(
                                f"sJMP nesting {level + 1} exceeds SPM "
                                f"capacity {spm_slots}")
                        save_cycles = entry_cycles
                        region = _BatchRegion(level, tgt_t[pc], taken)
                        region.entry_regs = list(regs)
                        regions.append(region)
                        mstack.append(region.nt_modified)
                        g.secure_branches += 1
                        g.secure_regions += 1
                        if level + 1 > g.max_nesting:
                            g.max_nesting = level + 1
                        g.drains += 1
                        g.spm_save_cycles += save_cycles
                        ap(-1); aa(save_cycles); at(level)
                        row_count += 1
                    elif taken:
                        taken_branches += 1
                        next_pc = tgt_t[pc]

                elif kop == K_EOSJMP:
                    ap(pc); aa(-1); at(-1)
                    row_count += 1
                    if sempe and regions:
                        region = regions[-1]
                        if region.phase == "NT":
                            # First eosJMP: save NT results, rewind to
                            # the entry state, jump back to the T path.
                            save_cycles = spm_cyc(
                                len(region.nt_modified) * reg_bytes
                                + bitvec_bytes)
                            restore_cycles = entry_cycles
                            region.nt_regs = list(regs)
                            regs[:] = region.entry_regs
                            jb.take_jump_back()
                            region.phase = "T"
                            mstack[-1] = region.t_modified
                            g.drains += 1
                            g.spm_save_cycles += save_cycles
                            g.spm_restore_cycles += restore_cycles
                            next_pc = region.target
                            ap(-2); aa(save_cycles + restore_cycles)
                            at(region.level)
                            row_count += 1
                        else:
                            # Second eosJMP: constant-time per-lane merge.
                            union = region.t_modified | region.nt_modified
                            restore_cycles = spm_cyc(
                                len(union) * reg_bytes + 2 * bitvec_bytes)
                            outcome = region.outcome
                            nt_regs = region.nt_regs
                            entry_regs = region.entry_regs
                            only_t = region.t_modified - region.nt_modified
                            if isinstance(outcome, bool):
                                if not outcome:
                                    for reg in region.nt_modified:
                                        regs[reg] = nt_regs[reg]
                                    for reg in only_t:
                                        regs[reg] = entry_regs[reg]
                            else:
                                for reg in region.nt_modified:
                                    regs[reg] = _merge(outcome, regs[reg],
                                                       nt_regs[reg])
                                for reg in only_t:
                                    regs[reg] = _merge(outcome, regs[reg],
                                                       entry_regs[reg])
                            jb.pop()
                            regions.pop()
                            mstack.pop()
                            if mstack:
                                mstack[-1] |= union
                            g.drains += 1
                            g.spm_restore_cycles += restore_cycles
                            ap(-3); aa(restore_cycles); at(region.level)
                            row_count += 1

                elif kop == K_JMP:
                    branches += 1
                    taken_branches += 1
                    next_pc = tgt_t[pc]
                    ap(pc); aa(-1); at(1)
                    row_count += 1

                elif kop == K_JAL:
                    branches += 1
                    taken_branches += 1
                    d = rd_t[pc]
                    if d > 0:
                        regs[d] = (pc + 1) & MASK64
                        if mstack:
                            mstack[-1].add(d)
                    next_pc = tgt_t[pc]
                    ap(pc); aa(-1); at(1)
                    row_count += 1

                elif kop == K_JALR:
                    target = regs[rs1_t[pc]]
                    if not isinstance(target, int):
                        first = target[0]
                        same = target == first
                        if bool(same.all()):
                            target = int(first)
                        else:
                            icount -= 1
                            op_counts[opid_t[pc]] -= 1
                            if regions:
                                secure_icount -= 1
                            split_mask = same
                            break
                    branches += 1
                    taken_branches += 1
                    d = rd_t[pc]
                    if d > 0:
                        regs[d] = (pc + 1) & MASK64
                        if mstack:
                            mstack[-1].add(d)
                    next_pc = target
                    ap(pc); aa(target); at(1)
                    row_count += 1

                elif kop == K_CMOV:
                    d = rd_t[pc]
                    cond = regs[rs2_t[pc]]
                    a = regs[rs1_t[pc]]
                    old = regs[d] if d >= 0 else 0
                    if isinstance(cond, int):
                        value = a if cond != 0 else old
                    else:
                        value = _merge(cond != _U64_0, _vu(a), _vu(old))
                    if d > 0:
                        regs[d] = value & MASK64 if isinstance(value, int) \
                            else value
                        if mstack:
                            mstack[-1].add(d)
                    ap(pc); aa(-1); at(-1)
                    row_count += 1

                elif kop == K_NOP:
                    ap(pc); aa(-1); at(-1)
                    row_count += 1

                else:    # K_HALT
                    g.halted = True
                    ap(pc); aa(-1); at(-1)
                    row_count += 1
                    pc += 1
                    break

                pc = next_pc
                if row_count - last_flush >= CHUNK_RECORDS:
                    boundaries.append(row_count)
                    last_flush = row_count
        except (SimulationError, SPMOverflowError, JbTableError) as exc:
            g.error = exc
        finally:
            g.pc = pc
            g.icount = icount
            g.secure_icount = secure_icount
            g.loads = loads
            g.stores = stores
            g.branches = branches
            g.taken_branches = taken_branches
            g.secure_loads = secure_loads
            g.secure_stores = secure_stores
            g.row_count = row_count
            g.last_flush = last_flush

        if split_mask is not None:
            inverse = ~split_mask
            work.append(g.split(split_mask))
            work.append(g.split(inverse))
        else:
            self._groups.append(g)

    # -- per-lane views ----------------------------------------------------

    def _group_of(self, lane: int) -> _Group:
        if not self._ran:
            raise RuntimeError("call run() before reading lane results")
        return self._lane_group[lane]

    def lane_error(self, lane: int) -> Exception | None:
        """The exception this lane's serial run would have raised."""
        if self._delegates is not None:
            return self._delegates[lane][2]
        return self._group_of(lane).error

    def lane_result(self, lane: int) -> ExecutionResult:
        """This lane's ExecutionResult (counters are group-uniform)."""
        if self._delegates is not None:
            return self._delegates[lane][0].result
        g = self._group_of(lane)
        op_counts: dict[str, int] = {}
        for op, count in zip(OPS, g.op_counts):
            if count:
                op_counts[op.value] = count
        return ExecutionResult(
            instructions=g.icount,
            secure_branches=g.secure_branches,
            secure_regions=g.secure_regions,
            max_nesting=g.max_nesting,
            loads=g.loads,
            stores=g.stores,
            branches=g.branches,
            taken_branches=g.taken_branches,
            secure_instructions=g.secure_icount,
            secure_loads=g.secure_loads,
            secure_stores=g.secure_stores,
            drains=g.drains,
            spm_save_cycles=g.spm_save_cycles,
            spm_restore_cycles=g.spm_restore_cycles,
            halted=g.halted,
            op_counts=op_counts,
        )

    def lane_regs(self, lane: int) -> list[int]:
        """Final architectural registers of one lane (python ints)."""
        if self._delegates is not None:
            return self._delegates[lane][0].state.snapshot_regs()
        g = self._group_of(lane)
        position = int(np.searchsorted(g.lanes, lane))
        return [value if isinstance(value, int) else int(value[position])
                for value in g.regs]

    def lane_pc(self, lane: int) -> int:
        if self._delegates is not None:
            return self._delegates[lane][0].state.pc
        return self._group_of(lane).pc

    def lane_halted(self, lane: int) -> bool:
        if self._delegates is not None:
            return self._delegates[lane][0].state.halted
        return self._group_of(lane).halted

    # -- trace materialization ---------------------------------------------

    def _segments(self, g: _Group) -> list[_Seg]:
        segs = []
        seg = g.seg
        while seg is not None:
            segs.append(seg)
            seg = seg.parent
        segs.reverse()
        return segs

    def _template(self, g: _Group):
        """Concatenated scalar columns + ordered patches for a group.

        Shared by every lane of the group; built once, cached.  Patches
        are ``(absolute_row, column, seg_lanes)`` in row order.
        """
        if g._template is None:
            pc_all: list[int] = []
            addr_all: list[int] = []
            taken_all: list[int] = []
            addr_patches: list[tuple[int, object, object]] = []
            taken_patches: list[tuple[int, object, object]] = []
            for seg in self._segments(g):
                pc_all.extend(seg.pc)
                addr_all.extend(seg.addr)
                taken_all.extend(seg.taken)
                for row, column in seg.addr_patch:
                    addr_patches.append((row, column, seg.lanes))
                for row, column in seg.taken_patch:
                    taken_patches.append((row, column, seg.lanes))
            g._template = (pc_all, addr_all, taken_all,
                           addr_patches, taken_patches)
        return g._template

    def _chunk_ends(self, g: _Group) -> list[int]:
        """Absolute end rows of the chunks a serial run would yield.

        Faulted lanes only ever yielded their full flushed chunks (the
        partial buffer dies with the exception, exactly like
        ``FastExecutor.run_chunks``); completed lanes flush the tail.
        """
        ends = list(g.boundaries)
        if g.error is None and g.row_count > (ends[-1] if ends else 0):
            ends.append(g.row_count)
        return ends

    def lane_chunks(self, lane: int) -> Iterator[TraceChunk]:
        """This lane's trace, byte-identical to the serial fast engine."""
        if self._delegates is not None:
            yield from self._delegates[lane][1]
            return
        g = self._group_of(lane)
        pc_all, addr_all, taken_all, addr_patches, taken_patches = \
            self._template(g)
        positions: dict[int, int] = {}

        def lane_position(seg_lanes) -> int:
            key = id(seg_lanes)
            position = positions.get(key)
            if position is None:
                position = int(np.searchsorted(seg_lanes, lane))
                positions[key] = position
            return position

        a_index = t_index = 0
        low = 0
        for high in self._chunk_ends(g):
            col_pc = pc_all[low:high]
            col_addr = addr_all[low:high]
            col_taken = taken_all[low:high]
            while (a_index < len(addr_patches)
                   and addr_patches[a_index][0] < high):
                row, column, seg_lanes = addr_patches[a_index]
                col_addr[row - low] = int(column[lane_position(seg_lanes)])
                a_index += 1
            while (t_index < len(taken_patches)
                   and taken_patches[t_index][0] < high):
                row, column, seg_lanes = taken_patches[t_index]
                col_taken[row - low] = int(column[lane_position(seg_lanes)])
                t_index += 1
            yield TraceChunk(low, col_pc, col_addr, col_taken, self._pred)
            low = high

    # -- timing digests and lockstep-group views ---------------------------

    def lane_group_ref(self, lane: int):
        """Opaque identity of the lane's lockstep group.

        Lanes sharing a ref have byte-identical control-flow/opclass
        structure (the batch engine's divergence groups), so one
        Phase-A branch schedule serves all of them.  Delegated lanes
        (speculation mode) each form their own singleton group.
        """
        if self._delegates is not None:
            return ("delegate", lane)
        return id(self._group_of(lane))

    def group_template_chunks(self, lane: int) -> Iterator[TraceChunk]:
        """The lane's group-shared trace columns, unpatched.

        One chunk over the scalar template — exactly the rows every
        lane of the group commits, with per-lane divergences still at
        their placeholders.  Sufficient for the Phase-A predictor pass:
        the patched rows are SeMPE secure-branch outcomes (never read
        by the predictors) and load/store addresses (not predictor
        inputs); indirect-jump targets are group-uniform ints.  Not
        available for delegated (speculation-mode) lanes, which have no
        shared structure.
        """
        if self._delegates is not None:
            raise RuntimeError(
                "delegated lanes have no shared group template")
        g = self._group_of(lane)
        pc_all, addr_all, taken_all, _ap, _tp = self._template(g)
        ends = self._chunk_ends(g)
        limit = ends[-1] if ends else 0
        if limit != len(pc_all):
            pc_all = pc_all[:limit]
            addr_all = addr_all[:limit]
            taken_all = taken_all[:limit]
        if limit:
            yield TraceChunk(0, pc_all, addr_all, taken_all, self._pred)

    def lane_timing_digest(self, lane: int) -> str:
        """Content digest of this lane's timing-relevant stream.

        Two lanes (of any batch, any cell) with equal digests feed the
        timing pipeline byte-identical inputs: the digest covers the
        static tables the model reads (:func:`predecode_digest`), the
        dynamic ``(pc, addr, taken)`` columns, and the lane's address
        patches in row order.  **Taken patches are excluded by
        construction**: they exist only for SeMPE secure-branch
        outcomes, which the timing model never consults (the front end
        always falls through on an sJMP, §IV-E) — that is what lets
        every lane of a SeMPE campaign share one digest, and one
        memoized pipeline pass.
        """
        if self._pred_digest is None:
            self._pred_digest = predecode_digest(self._pred)
        if self._delegates is not None:
            hasher = hashlib.sha256(self._pred_digest)
            for chunk in self._delegates[lane][1]:
                update_stream_digest(hasher, chunk.pc, chunk.addr,
                                     chunk.taken)
            return hasher.hexdigest()
        g = self._group_of(lane)
        ends = self._chunk_ends(g)
        limit = ends[-1] if ends else 0
        if g._timing_hasher is None:
            hasher = hashlib.sha256(self._pred_digest)
            pc_all, addr_all, taken_all, _ap, _tp = self._template(g)
            if limit != len(pc_all):
                update_stream_digest(hasher, pc_all[:limit],
                                     addr_all[:limit], taken_all[:limit])
            else:
                update_stream_digest(hasher, pc_all, addr_all, taken_all)
            g._timing_hasher = hasher
        hasher = g._timing_hasher.copy()
        addr_patches = self._template(g)[3]
        for row, column, seg_lanes in addr_patches:
            if row >= limit:
                break
            position = int(np.searchsorted(seg_lanes, lane))
            hasher.update(b"%d=%d;" % (row, int(column[position])))
        return hasher.hexdigest()

    def _base_arrays(self, g: _Group):
        """Group-shared vector columns over the *yielded* trace rows.

        ``(pc, addr_u64, addr_valid)``: drain rows keep their negative
        pc; ``addr_valid`` marks rows whose addr column held a
        non-negative value before patching (memory addresses, dynamic
        jump targets — drain-cycle rows are screened by pc later).
        Divergent-row placeholders are patched per lane afterwards.
        """
        if g._arrays is None:
            pc_all, addr_all, _taken_all, _ap, _tp = self._template(g)
            ends = self._chunk_ends(g)
            limit = ends[-1] if ends else 0
            pc_arr = np.array(pc_all[:limit], dtype=np.int64)
            try:
                addr_signed = np.array(addr_all[:limit], dtype=np.int64)
                addr_arr = addr_signed.view(np.uint64).copy()
                addr_valid = addr_signed >= 0
            except OverflowError:
                # An address at or above 2**63 (wild but architecturally
                # legal) — assemble the masked column the slow way.
                column = addr_all[:limit]
                addr_arr = np.array([a & MASK64 for a in column],
                                    dtype=np.uint64)
                addr_valid = np.array([a >= 0 for a in column], dtype=bool)
            g._arrays = (pc_arr, addr_arr, addr_valid, limit)
        return g._arrays

    def lane_streams(self, lane: int, line_bytes: int):
        """Observable streams of one lane, vectorized.

        Returns ``(instruction_count, pc_values, mem_lines)`` where
        ``pc_values`` is the committed-instruction PC sequence and
        ``mem_lines`` the data-address stream divided down to cache
        lines — exactly the records a
        :class:`~repro.security.observer.TraceObserver` would see from
        this lane's serial run (drain rows dropped, indirect-jump
        targets excluded from the memory stream).
        """
        if self._delegates is not None:
            return self._delegated_streams(lane, line_bytes)
        g = self._group_of(lane)
        pc_arr, addr_base, addr_valid, limit = self._base_arrays(g)
        _pc_all, _addr_all, _taken_all, addr_patches, _taken_patches = \
            self._template(g)
        if addr_patches:
            addr_arr = addr_base.copy()
            rows = []
            values = []
            for row, column, seg_lanes in addr_patches:
                if row >= limit:
                    break
                rows.append(row)
                values.append(column[int(np.searchsorted(seg_lanes, lane))])
            if rows:
                addr_arr[np.array(rows, dtype=np.int64)] = \
                    np.array(values, dtype=np.uint64)
        else:
            addr_arr = addr_base
        inst = pc_arr >= 0
        if self._ijump_kind is None:
            self._ijump_kind = np.array(self._pred.kind, dtype=np.int64)
        mem_rows = np.nonzero(inst & addr_valid)[0]
        keep = self._ijump_kind[pc_arr[mem_rows]] != K_JALR
        mem_lines = addr_arr[mem_rows[keep]] // np.uint64(line_bytes)
        return int(inst.sum()), pc_arr[inst], mem_lines

    def _delegated_streams(self, lane: int, line_bytes: int):
        """:meth:`lane_streams` over a delegated lane's stored chunks.

        Committed rows only: drain rows (``-3 <= pc < 0``) and transient
        rows (``pc <= -4``) are dropped, and indirect-jump targets stay
        out of the memory stream, matching the vectorized path and the
        serial :class:`~repro.security.observer.TraceObserver`.
        """
        kind_t = self._pred.kind
        pcs: list[int] = []
        lines: list[int] = []
        for chunk in self._delegates[lane][1]:
            for pc, addr in zip(chunk.pc, chunk.addr):
                if pc < 0:
                    continue
                pcs.append(pc)
                if addr >= 0 and kind_t[pc] != K_JALR:
                    lines.append(addr // line_bytes)
        return (len(pcs), np.array(pcs, dtype=np.int64),
                np.array(lines, dtype=np.uint64))
