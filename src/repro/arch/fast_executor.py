"""Fast functional engine: predecoded dispatch, columnar trace output.

:class:`FastExecutor` is a drop-in replacement for :class:`Executor`
that is several times faster while remaining **bit-exact**: it produces
the same :class:`~repro.arch.executor.ExecutionResult`, the same final
architectural state, and (through :class:`~repro.arch.trace.TraceChunk`)
the same dynamic trace, record for record.

Where the reference executor re-decodes every dynamic instruction —
Enum comparisons, dataclass attribute loads, a generator frame and a
:class:`~repro.arch.trace.DynInstr` allocation per instruction — the
fast engine:

* dispatches on the per-instruction handler kind from the program's
  predecode tables (:meth:`repro.isa.program.Program.predecode`),
* keeps the hot state (registers, counters, column buffers) in local
  variables,
* counts opcodes in an int-indexed array instead of a string-keyed dict,
* emits the trace as struct-of-arrays chunks of ~4k records instead of
  one object per instruction.

SeMPE region bookkeeping (sJMP entry, the two ``eosJMP`` drains) is
inherited from the reference executor unchanged: drains are rare, and
sharing the code guarantees the two engines can never drift apart on
the security-critical path.
"""

from __future__ import annotations

from typing import Iterator

from repro.arch.executor import Executor, InstructionLimitError, SimulationError
from repro.arch.trace import (
    CHUNK_RECORDS, DRAIN_REASON_ID, TRANSIENT_PC_BASE, TraceChunk,
)
from repro.isa.opcodes import NUM_OPS, OPS
from repro.isa.program import (
    K_ADD, K_SUB, K_MUL, K_DIV, K_AND, K_OR, K_XOR,
    K_SLL, K_SRL, K_SRA, K_SLT, K_SLTU, K_LUI,
    K_LOAD, K_STORE,
    K_BEQ, K_BNE, K_BLT, K_BLTU, K_BGEU,
    K_JMP, K_JAL, K_JALR, K_CMOV, K_EOSJMP, K_NOP,
    K_LAST_ALU, K_LAST_BRANCH,
)

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63
TWO64 = 1 << 64


class FastExecutor(Executor):
    """Chunk-producing executor; see the module docstring.

    The constructor and all SeMPE region handling are inherited from
    :class:`Executor`; only the fetch/decode/execute loop is replaced.
    ``run_chunks`` is single-shot: one executor simulates one program
    once (exactly how the engine uses the reference executor).
    """

    _consumed = False

    def run_chunks(self, line_bytes: int = 64) -> Iterator[TraceChunk]:
        """Execute to completion, yielding columnar trace chunks.

        *line_bytes* is the instruction-cache line size used for the
        predecoded line indices (must match the timing model's IL1).
        """
        if self._consumed:
            raise RuntimeError("FastExecutor.run_chunks is single-use")
        self._consumed = True

        pred = self.program.predecode(line_bytes)
        self._spec_pred = pred
        kind_t = pred.kind
        opid_t = pred.op_id
        rd_t = pred.rd
        rs1_t = pred.rs1
        rs2_t = pred.rs2
        imm_t = pred.imm
        b_imm_t = pred.b_is_imm
        tgt_t = pred.target
        sec_t = pred.secure
        w_t = pred.width
        n_prog = pred.n
        instructions = self.program.instructions

        state = self.state
        regs = state.regs
        mem_load = state.memory.load
        mem_store = state.memory.store
        regions = self._regions
        mstack = self._modified_stack
        sempe = self.sempe
        strict = self.strict
        max_instructions = self.max_instructions
        drain_id = DRAIN_REASON_ID
        # Transient execution: forks happen at eligible conditional
        # branches (never SecPrefix'ed ones, never inside a fenced
        # region) and splice the wrong-path rows — encoded with
        # ``pc = TRANSIENT_PC_BASE - static_pc`` — right after the
        # branch row.  ``sec_t`` may be zeroed below for the sempe-off
        # hoist, so eligibility reads the real secure column.
        speculate = self.speculation is not None
        fence_mode = self.fence_mode
        real_sec_t = pred.secure
        fence_depth = 0
        transient_rows = self._transient_rows
        if not sempe:
            # Constant-per-run hoist: with SeMPE off no branch can open a
            # secure region, so the per-branch ``sec_t[pc]`` test can read
            # from an all-false column instead of re-testing ``sempe``.
            sec_t = b"\x00" * n_prog

        # Column buffers for the chunk under construction.
        col_pc: list[int] = []
        col_addr: list[int] = []
        col_taken: list[int] = []
        ap, aa, at = col_pc.append, col_addr.append, col_taken.append
        seq0 = self._seq

        # Hot counters (flushed into self.result in the finally block so
        # partial runs — instruction-limit aborts, bad PCs — report the
        # same totals as the reference engine).
        icount = 0
        secure_icount = 0
        loads = stores = branches = taken_branches = 0
        secure_loads = secure_stores = 0
        op_counts = [0] * NUM_OPS
        # ``secure_icount`` is reconstructed from checkpoints instead of a
        # per-instruction ``if regions:`` test: ``secure_base`` records
        # ``icount`` when the outermost region opens, and the delta is
        # banked when it closes (or in ``finally`` for aborted runs).
        secure_base = 0

        pc = state.pc
        try:
            while not state.halted:
                # The fuel budget is enforced per stretch, not per
                # instruction: every instruction inside a stretch is
                # within budget by construction, so only the stretch
                # boundary needs the compare.  The reference engine
                # checks PC range before fuel each step; replicate that
                # precedence here when the budget runs out.
                remaining = max_instructions - icount
                if remaining <= 0:
                    if not 0 <= pc < n_prog:
                        raise SimulationError(f"PC out of range: {pc}")
                    raise InstructionLimitError(
                        f"exceeded {max_instructions} dynamic instructions",
                        executed=icount,
                    )
                if remaining > CHUNK_RECORDS:
                    remaining = CHUNK_RECORDS
                for _ in range(remaining):
                    if not 0 <= pc < n_prog:
                        raise SimulationError(f"PC out of range: {pc}")
                    k = kind_t[pc]
                    icount += 1
                    op_counts[opid_t[pc]] += 1
                    next_pc = pc + 1

                    if k <= K_LAST_ALU:
                        # Register operands are masked at read so that raw
                        # out-of-range values poked directly into
                        # ``state.regs`` (negative, or >= 2**64) behave
                        # exactly as in the reference engine, whose
                        # ``to_signed``/``to_unsigned`` helpers normalize
                        # every operand per op.  Immediates stay raw — the
                        # reference uses them raw too, and each handler
                        # below masks them where its semantics require.
                        r1 = rs1_t[pc]
                        a = regs[r1] & MASK64 if r1 >= 0 else 0
                        if b_imm_t[pc]:
                            b = imm_t[pc]
                        else:
                            r2 = rs2_t[pc]
                            b = regs[r2] & MASK64 if r2 >= 0 else 0
                        if k == K_ADD:
                            value = a + b
                        elif k == K_SUB:
                            value = a - b
                        elif k == K_AND:
                            value = a & b
                        elif k == K_OR:
                            value = a | b
                        elif k == K_XOR:
                            value = a ^ b
                        elif k == K_SLL:
                            value = a << (b & 63)
                        elif k == K_SRL:
                            value = a >> (b & 63)
                        elif k == K_SRA:
                            sa = a - TWO64 if a >= SIGN_BIT else a
                            value = sa >> (b & 63)
                        elif k == K_SLT:
                            ub = b & MASK64
                            sa = a - TWO64 if a >= SIGN_BIT else a
                            sb = ub - TWO64 if ub >= SIGN_BIT else ub
                            value = 1 if sa < sb else 0
                        elif k == K_SLTU:
                            value = 1 if a < (b & MASK64) else 0
                        elif k == K_LUI:
                            value = imm_t[pc]
                        elif k == K_MUL:
                            sa = a - TWO64 if a >= SIGN_BIT else a
                            ub = b & MASK64
                            sb = ub - TWO64 if ub >= SIGN_BIT else ub
                            value = sa * sb
                        else:  # K_DIV / K_REM — mirrors Executor._divide
                            sa = a - TWO64 if a >= SIGN_BIT else a
                            ub = b & MASK64
                            sb = ub - TWO64 if ub >= SIGN_BIT else ub
                            if sb == 0:
                                if strict:
                                    raise SimulationError(
                                        "division by zero in strict mode")
                                value = -1 if k == K_DIV else sa
                            else:
                                quotient = abs(sa) // abs(sb)
                                if (sa < 0) != (sb < 0):
                                    quotient = -quotient
                                value = quotient if k == K_DIV \
                                    else sa - quotient * sb
                        d = rd_t[pc]
                        if d > 0:
                            regs[d] = value & MASK64
                            if mstack:
                                mstack[-1].add(d)
                        ap(pc); aa(-1); at(-1)

                    elif k == K_LOAD:
                        addr = (regs[rs1_t[pc]] + imm_t[pc]) & MASK64
                        loads += 1
                        if regions:
                            secure_loads += 1
                        value = mem_load(addr, w_t[pc])
                        d = rd_t[pc]
                        if d > 0:
                            regs[d] = value & MASK64
                            if mstack:
                                mstack[-1].add(d)
                        ap(pc); aa(addr); at(-1)

                    elif k == K_STORE:
                        addr = (regs[rs1_t[pc]] + imm_t[pc]) & MASK64
                        stores += 1
                        if regions:
                            secure_stores += 1
                        mem_store(addr, regs[rs2_t[pc]], w_t[pc])
                        ap(pc); aa(addr); at(-1)

                    elif k <= K_LAST_BRANCH:
                        # BEQ/BNE compare raw register contents (so does the
                        # reference); the ordered compares normalize first,
                        # mirroring to_unsigned/to_signed in
                        # Executor._branch_condition.
                        a = regs[rs1_t[pc]]
                        b = regs[rs2_t[pc]]
                        if k == K_BEQ:
                            taken = a == b
                        elif k == K_BNE:
                            taken = a != b
                        elif k == K_BLTU:
                            taken = (a & MASK64) < (b & MASK64)
                        elif k == K_BGEU:
                            taken = (a & MASK64) >= (b & MASK64)
                        else:
                            a &= MASK64
                            b &= MASK64
                            sa = a - TWO64 if a >= SIGN_BIT else a
                            sb = b - TWO64 if b >= SIGN_BIT else b
                            taken = sa < sb if k == K_BLT else sa >= sb
                        branches += 1
                        ap(pc); aa(-1); at(1 if taken else 0)
                        if sec_t[pc]:
                            if not regions:
                                secure_base = icount
                            for drain in self._enter_secure_region(
                                    instructions[pc], taken):
                                ap(-1 - drain_id[drain.reason])
                                aa(drain.spm_cycles)
                                at(drain.level)
                        elif taken:
                            taken_branches += 1
                            next_pc = tgt_t[pc]
                        if fence_mode and real_sec_t[pc]:
                            fence_depth += 1
                        elif speculate and not real_sec_t[pc] \
                                and fence_depth == 0:
                            for t_pc, t_addr, t_tk in transient_rows(
                                    pc + 1 if taken else tgt_t[pc]):
                                ap(TRANSIENT_PC_BASE - t_pc)
                                aa(t_addr)
                                at(t_tk)

                    elif k == K_EOSJMP:
                        ap(pc); aa(-1); at(-1)
                        if sempe and regions:
                            next_pc, eos_drains = self._handle_eosjmp(pc)
                            for drain in eos_drains:
                                ap(-1 - drain_id[drain.reason])
                                aa(drain.spm_cycles)
                                at(drain.level)
                            if not regions:
                                # Outermost region closed: bank its
                                # instruction span (see secure_base).
                                secure_icount += icount - secure_base
                        elif fence_depth:
                            # Join of a fenced region (see Executor).
                            fence_depth -= 1

                    elif k == K_JMP:
                        branches += 1
                        taken_branches += 1
                        next_pc = tgt_t[pc]
                        ap(pc); aa(-1); at(1)

                    elif k == K_JAL:
                        branches += 1
                        taken_branches += 1
                        d = rd_t[pc]
                        if d > 0:
                            regs[d] = (pc + 1) & MASK64
                            if mstack:
                                mstack[-1].add(d)
                        next_pc = tgt_t[pc]
                        ap(pc); aa(-1); at(1)

                    elif k == K_JALR:
                        branches += 1
                        taken_branches += 1
                        target = regs[rs1_t[pc]]
                        d = rd_t[pc]
                        if d > 0:
                            regs[d] = (pc + 1) & MASK64
                            if mstack:
                                mstack[-1].add(d)
                        next_pc = target
                        ap(pc); aa(target); at(1)

                    elif k == K_CMOV:
                        d = rd_t[pc]
                        value = regs[rs1_t[pc]] if regs[rs2_t[pc]] != 0 \
                            else (regs[d] if d >= 0 else 0)
                        if d > 0:
                            regs[d] = value & MASK64
                            if mstack:
                                mstack[-1].add(d)
                        ap(pc); aa(-1); at(-1)

                    elif k == K_NOP:
                        ap(pc); aa(-1); at(-1)

                    else:  # K_HALT
                        state.halted = True
                        ap(pc); aa(-1); at(-1)
                        pc += 1
                        break

                    pc = next_pc
                    if len(col_pc) >= CHUNK_RECORDS:
                        chunk = TraceChunk(seq0, col_pc, col_addr, col_taken,
                                           pred)
                        yield chunk
                        seq0 += chunk.n
                        col_pc, col_addr, col_taken = [], [], []
                        ap, aa, at = (col_pc.append, col_addr.append,
                                      col_taken.append)

            self.result.halted = True
            if col_pc:
                yield TraceChunk(seq0, col_pc, col_addr, col_taken, pred)
                seq0 += len(col_pc)
                col_pc = []
        finally:
            state.pc = pc
            if regions:
                # Run ended (abort or halt) inside an open region: bank
                # the partial span up to the last executed instruction.
                secure_icount += icount - secure_base
            # Rows buffered but not yet yielded (aborted runs) still
            # executed; count them like the reference engine would.
            self._seq = seq0 + len(col_pc)
            result = self.result
            result.instructions += icount
            result.secure_instructions += secure_icount
            result.loads += loads
            result.stores += stores
            result.branches += branches
            result.taken_branches += taken_branches
            result.secure_loads += secure_loads
            result.secure_stores += secure_stores
            counts = result.op_counts
            for op, count in zip(OPS, op_counts):
                if count:
                    counts[op.value] = counts.get(op.value, 0) + count
