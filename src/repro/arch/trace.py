"""Dynamic trace records: per-object stream and columnar batched chunks.

The **reference** functional executor emits a stream of :class:`DynInstr`
(one per committed instruction) interleaved with :class:`DrainEvent`
markers for the SeMPE pipeline drains and SPM transfers.  The out-of-order
timing model, the side-channel observers, and the statistics collectors
all consume this common stream.

The **fast** engine replaces the object-per-instruction stream with
:class:`TraceChunk` — struct-of-arrays batches of :data:`CHUNK_RECORDS`
records.  Because almost every per-record field is a pure function of the
static instruction, a chunk only carries the three dynamic columns
(``pc``, ``addr``, ``taken``); everything else is looked up in the
program's :class:`repro.isa.program.PredecodedProgram` tables.  Drain
events ride in the same columns with ``pc < 0`` (see
:meth:`TraceChunk.records`).  The :meth:`TraceChunk.records` adapter
re-materializes :class:`DynInstr`/:class:`DrainEvent` objects so security
observers and tests can consume chunked traces unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.isa.opcodes import Op, OpClass, OPCLASSES, OPS


class DynInstr:
    """One committed dynamic instruction."""

    __slots__ = (
        "seq", "pc", "op", "opclass", "srcs", "dst",
        "mem_addr", "mem_width", "is_store",
        "taken", "target", "secure",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: Op,
        opclass: OpClass,
        srcs: tuple[int, ...],
        dst: int | None,
        mem_addr: int | None = None,
        mem_width: int = 0,
        is_store: bool = False,
        taken: bool | None = None,
        target: int | None = None,
        secure: bool = False,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.srcs = srcs
        self.dst = dst
        self.mem_addr = mem_addr
        self.mem_width = mem_width
        self.is_store = is_store
        self.taken = taken
        self.target = target
        self.secure = secure

    @property
    def kind(self) -> str:
        return "inst"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.mem_addr is not None:
            extra = f" addr=0x{self.mem_addr:x}"
        if self.taken is not None:
            extra += f" taken={self.taken}"
        return f"<DynInstr #{self.seq} pc={self.pc} {self.op.value}{extra}>"


class DrainEvent:
    """A SeMPE pipeline drain, optionally with SPM transfer cycles.

    ``reason`` is one of ``"secblock-entry"``, ``"nt-path-end"`` or
    ``"secblock-exit"`` (the three drains of Fig. 6).
    """

    __slots__ = ("seq", "reason", "spm_cycles", "level")

    def __init__(self, seq: int, reason: str, spm_cycles: int, level: int) -> None:
        self.seq = seq
        self.reason = reason
        self.spm_cycles = spm_cycles
        self.level = level

    @property
    def kind(self) -> str:
        return "drain"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Drain #{self.seq} {self.reason} level={self.level} "
            f"spm={self.spm_cycles}cyc>"
        )


class TransientInstr:
    """One squashed wrong-path instruction (speculation window).

    Emitted by the functional engines, immediately after the conditional
    branch that forked it, only when
    :class:`repro.uarch.config.SpeculationConfig` is enabled.  The
    timing pipeline applies its cache touches when its predictor
    mispredicted the branch (the wrong path *is* the predicted path
    then) and discards it otherwise; it never retires, never counts as
    a committed instruction, and never trains a predictor.
    """

    __slots__ = ("seq", "pc", "op", "opclass", "mem_addr", "mem_width",
                 "is_store", "taken")

    def __init__(self, seq: int, pc: int, op: Op, opclass: OpClass,
                 mem_addr: int | None = None, mem_width: int = 0,
                 is_store: bool = False, taken: bool | None = None) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.mem_addr = mem_addr
        self.mem_width = mem_width
        self.is_store = is_store
        self.taken = taken

    @property
    def kind(self) -> str:
        return "transient"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.mem_addr is not None:
            extra = f" addr=0x{self.mem_addr:x}"
        return f"<Transient #{self.seq} pc={self.pc} {self.op.value}{extra}>"


TraceRecord = DynInstr | DrainEvent | TransientInstr


# --------------------------------------------------------------------------
# Columnar batched trace protocol (the fast engine's wire format).
# --------------------------------------------------------------------------

CHUNK_RECORDS = 4096

DRAIN_REASONS = ("secblock-entry", "nt-path-end", "secblock-exit")
DRAIN_REASON_ID = {reason: index for index, reason in enumerate(DRAIN_REASONS)}

# Transient (wrong-path) rows ride in the same columns with
# ``pc = TRANSIENT_PC_BASE - static_pc`` — disjoint from the drain codes
# ``-1..-3`` because static PCs are non-negative, so ``pc <= -4`` always
# decodes as transient and ``-3 <= pc < 0`` always as a drain.
TRANSIENT_PC_BASE = -4

_STORE_CLS = OpClass.STORE
_IJUMP_CLS = OpClass.IJUMP


class TraceChunk:
    """A struct-of-arrays batch of up to :data:`CHUNK_RECORDS` records.

    Row encoding (columns are parallel lists of ints):

    * instruction — ``pc`` is the instruction index (>= 0); ``addr`` is
      the memory byte address (loads/stores), the dynamic jump target
      (indirect jumps, whose target is a register value and thus not in
      the static tables) or ``-1``; ``taken`` is ``-1`` (not a branch),
      ``0`` or ``1``.
    * drain — ``pc`` is ``-(1 + reason_id)``; ``addr`` carries the SPM
      transfer cycles; ``taken`` carries the nesting level.
    * transient — ``pc`` is ``TRANSIENT_PC_BASE - static_pc`` (always
      ``<= -4``); ``addr``/``taken`` follow the instruction-row
      convention for the squashed wrong-path instruction.

    ``seq0`` is the stream sequence number of the first record; record
    *i* has sequence ``seq0 + i`` (the reference executor numbers every
    record, instruction or drain, consecutively).  ``pred`` is the
    :class:`~repro.isa.program.PredecodedProgram` whose static tables
    complete each instruction row.
    """

    __slots__ = ("seq0", "n", "pc", "addr", "taken", "pred")

    def __init__(self, seq0: int, pc: list[int], addr: list[int],
                 taken: list[int], pred) -> None:
        self.seq0 = seq0
        self.n = len(pc)
        self.pc = pc
        self.addr = addr
        self.taken = taken
        self.pred = pred

    def records(self) -> Iterator[TraceRecord]:
        """Re-materialize the per-object record stream for this chunk."""
        pred = self.pred
        seq = self.seq0
        for pc, addr, taken in zip(self.pc, self.addr, self.taken):
            if pc < 0:
                if pc <= TRANSIENT_PC_BASE:
                    spc = TRANSIENT_PC_BASE - pc
                    opclass = OPCLASSES[pred.cls_id[spc]]
                    yield TransientInstr(
                        seq=seq,
                        pc=spc,
                        op=OPS[pred.op_id[spc]],
                        opclass=opclass,
                        mem_addr=None if addr < 0 else addr,
                        mem_width=pred.width[spc],
                        is_store=opclass is _STORE_CLS,
                        taken=None if taken < 0 else bool(taken),
                    )
                else:
                    yield DrainEvent(seq, DRAIN_REASONS[-pc - 1], addr, taken)
            else:
                opclass = OPCLASSES[pred.cls_id[pc]]
                dst = pred.dst[pc]
                if opclass is _IJUMP_CLS:
                    mem_addr, target = None, addr
                else:
                    mem_addr = None if addr < 0 else addr
                    target = None if pred.target[pc] < 0 else pred.target[pc]
                yield DynInstr(
                    seq=seq,
                    pc=pc,
                    op=OPS[pred.op_id[pc]],
                    opclass=opclass,
                    srcs=pred.srcs[pc],
                    dst=None if dst < 0 else dst,
                    mem_addr=mem_addr,
                    mem_width=pred.width[pc],
                    is_store=opclass is _STORE_CLS,
                    taken=None if taken < 0 else bool(taken),
                    target=target,
                    secure=bool(pred.secure[pc]),
                )
            seq += 1


def chunk_records(chunks: Iterable[TraceChunk]) -> Iterator[TraceRecord]:
    """Flatten a chunk stream back into per-object trace records."""
    for chunk in chunks:
        yield from chunk.records()


# --------------------------------------------------------------------------
# Incremental stream digests (the timing-memoization key material).
# --------------------------------------------------------------------------

def update_stream_digest(hasher, pc: list[int], addr: list[int],
                         taken: list[int]) -> None:
    """Fold one chunk's dynamic columns into *hasher*.

    Cheap and injective: each column is serialized via ``repr`` (C-speed
    for int lists, and unambiguous — separators and signs make distinct
    column contents produce distinct byte strings), with a per-column
    tag so a value sliding between columns changes the digest.  Equal
    digests therefore mean equal ``(pc, addr, taken)`` streams modulo a
    SHA-256 collision.  Chunk boundaries are deliberately *not* folded
    in: the timing model is row-ordered and boundary-blind, so streams
    that differ only in chunking memoize to the same entry.
    """
    hasher.update(b"p")
    hasher.update(repr(pc).encode())
    hasher.update(b"a")
    hasher.update(repr(addr).encode())
    hasher.update(b"t")
    hasher.update(repr(taken).encode())


def predecode_digest(pred) -> bytes:
    """Content identity of the static tables a timing pass consumes.

    Covers every per-PC table the pipeline reads (opclass, op, sources,
    destination, secure bit, icache line, static target, access width)
    plus the line geometry, so two lanes only share a memoized timing
    result when their *programs* agree wherever the model looks, not
    just their dynamic streams.
    """
    import hashlib

    hasher = hashlib.sha256()
    for table in (pred.cls_id, pred.op_id, pred.srcs, pred.dst,
                  pred.secure, pred.line, pred.target, pred.width):
        hasher.update(repr(table).encode())
    hasher.update(repr(pred.line_bytes).encode())
    return hasher.digest()
