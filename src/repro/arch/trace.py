"""Dynamic trace records.

The functional executor emits a stream of :class:`DynInstr` (one per
committed instruction) interleaved with :class:`DrainEvent` markers for
the SeMPE pipeline drains and SPM transfers.  The out-of-order timing
model, the side-channel observers, and the statistics collectors all
consume this common stream.
"""

from __future__ import annotations

from repro.isa.opcodes import Op, OpClass


class DynInstr:
    """One committed dynamic instruction."""

    __slots__ = (
        "seq", "pc", "op", "opclass", "srcs", "dst",
        "mem_addr", "mem_width", "is_store",
        "taken", "target", "secure",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: Op,
        opclass: OpClass,
        srcs: tuple[int, ...],
        dst: int | None,
        mem_addr: int | None = None,
        mem_width: int = 0,
        is_store: bool = False,
        taken: bool | None = None,
        target: int | None = None,
        secure: bool = False,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.srcs = srcs
        self.dst = dst
        self.mem_addr = mem_addr
        self.mem_width = mem_width
        self.is_store = is_store
        self.taken = taken
        self.target = target
        self.secure = secure

    @property
    def kind(self) -> str:
        return "inst"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.mem_addr is not None:
            extra = f" addr=0x{self.mem_addr:x}"
        if self.taken is not None:
            extra += f" taken={self.taken}"
        return f"<DynInstr #{self.seq} pc={self.pc} {self.op.value}{extra}>"


class DrainEvent:
    """A SeMPE pipeline drain, optionally with SPM transfer cycles.

    ``reason`` is one of ``"secblock-entry"``, ``"nt-path-end"`` or
    ``"secblock-exit"`` (the three drains of Fig. 6).
    """

    __slots__ = ("seq", "reason", "spm_cycles", "level")

    def __init__(self, seq: int, reason: str, spm_cycles: int, level: int) -> None:
        self.seq = seq
        self.reason = reason
        self.spm_cycles = spm_cycles
        self.level = level

    @property
    def kind(self) -> str:
        return "drain"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Drain #{self.seq} {self.reason} level={self.level} "
            f"spm={self.spm_cycles}cyc>"
        )


TraceRecord = DynInstr | DrainEvent
